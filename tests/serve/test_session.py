"""The live session's bookkeeping: books balance, snapshots, limits.

Every issued question must meet exactly one fate — the counters are a
closed ledger, checked here after every kind of exchange the API
allows (counted, malformed, unknown, gone, timed out, reissued). The
fingerprint-level equivalence story lives in
``test_differential*.py``; this module pins the mechanics that make it
possible.
"""

import time

import pytest

from repro.errors import ConfigurationError
from repro.serve import (
    RealTimeClock,
    Scenario,
    ServeConfig,
    ServeError,
    ServeSnapshot,
    SessionManager,
    run_session_inprocess,
)

SCENARIO = Scenario(n_members=6, transactions_per_member=30, budget=40)


def assert_books_balance(session):
    """issued == every fate, exactly once (the documented invariant)."""
    s = session.stats()
    assert s["issued"] == (
        s["answered"]
        + s["stale"]
        + s["malformed"]
        + s["rejected"]
        + s["gone"]
        + s["timeouts"]
        + s["outstanding"]
    ), s


class TestExchangeLedger:
    def test_counted_answer_books(self):
        session, pool = run_session_inprocess(SCENARIO)
        doc = session.next_question()
        assert doc["status"] == "ok"
        question = doc["question"]
        outcome = session.post_answer(
            question["question_id"], pool.answer(question)
        )
        assert outcome["status"] == "counted"
        stats = session.stats()
        assert stats["issued"] == 1 and stats["answered"] == 1
        assert stats["outstanding"] == 0
        assert session.miner.questions_asked == 1
        assert_books_balance(session)

    def test_malformed_answer_costs_no_budget(self):
        session, _pool = run_session_inprocess(SCENARIO)
        question = session.next_question()["question"]
        outcome = session.post_answer(question["question_id"], {"support": "junk"})
        assert outcome["status"] == "malformed"
        assert session.miner.questions_asked == 0  # same as the sync gate
        assert session.stats()["malformed"] == 1
        assert_books_balance(session)

    def test_unknown_question_id_is_acknowledged_not_counted(self):
        session, pool = run_session_inprocess(SCENARIO)
        question = session.next_question()["question"]
        answer = pool.answer(question)
        first = session.post_answer(question["question_id"], answer)
        replay = session.post_answer(question["question_id"], answer)
        assert first["status"] == "counted"
        assert replay["status"] == "unknown"
        assert session.stats()["answered"] == 1
        assert session.stats()["unknown"] == 1
        assert session.miner.questions_asked == 1
        assert_books_balance(session)

    def test_gone_member_leaves_without_spending_budget(self):
        session, _pool = run_session_inprocess(SCENARIO)
        question = session.next_question()["question"]
        member = question["member"]
        outcome = session.post_answer(question["question_id"], {"gone": True})
        assert outcome["status"] == "gone"
        assert not session.miner.crowd.is_member_available(member)
        assert session.miner.questions_asked == 0
        assert_books_balance(session)

    def test_leaving_answer_counts_then_departs(self):
        session, pool = run_session_inprocess(SCENARIO)
        question = session.next_question()["question"]
        member = question["member"]
        answer = dict(pool.answer(question))
        answer["leaving"] = True
        outcome = session.post_answer(question["question_id"], answer)
        assert outcome["status"] == "counted"
        assert session.miner.questions_asked == 1
        assert not session.miner.crowd.is_member_available(member)
        assert_books_balance(session)

    def test_non_object_answer_folds_to_malformed(self):
        session, _pool = run_session_inprocess(SCENARIO)
        question = session.next_question()["question"]
        outcome = session.post_answer(question["question_id"], "free text")
        assert outcome["status"] == "malformed"
        assert_books_balance(session)


class TestIssueLimits:
    def test_budget_reservation_refuses_overissue(self):
        scenario = Scenario(n_members=6, transactions_per_member=30, budget=3)
        session, _pool = run_session_inprocess(scenario)
        for _ in range(3):
            assert session.next_question()["status"] == "ok"
        blocked = session.next_question()
        assert blocked["status"] == "wait"
        assert "budget" in blocked["reason"]
        assert_books_balance(session)

    def test_busy_members_are_not_double_booked(self):
        scenario = Scenario(n_members=3, transactions_per_member=30, budget=40)
        session, _pool = run_session_inprocess(scenario)
        members = set()
        for _ in range(3):
            doc = session.next_question()
            assert doc["status"] == "ok"
            members.add(doc["question"]["member"])
        assert len(members) == 3
        assert session.next_question()["status"] == "wait"

    def test_full_dry_round_ends_the_session(self):
        """A whole crowd round of no-evidence exchanges == sync step()
        returning None: the session reports done, like miner.run()
        breaking out."""
        session, _pool = run_session_inprocess(SCENARIO)
        for _ in range(len(session.miner.crowd)):
            question = session.next_question()["question"]
            session.post_answer(question["question_id"], {"support": "junk"})
        assert session.is_done
        assert session.next_question()["status"] == "done"

    def test_counted_answer_resets_the_dry_streak(self):
        session, pool = run_session_inprocess(SCENARIO)
        for _ in range(len(session.miner.crowd) - 1):
            question = session.next_question()["question"]
            session.post_answer(question["question_id"], {"support": "junk"})
        question = session.next_question()["question"]
        session.post_answer(question["question_id"], pool.answer(question))
        assert not session.is_done
        assert session.next_question()["status"] == "ok"


class TestTimeouts:
    def make_session(self, timeout=0.01, max_retries=2):
        return run_session_inprocess(
            SCENARIO, config=ServeConfig(timeout=timeout, max_retries=max_retries)
        )

    def fire(self, session):
        time.sleep(0.02)
        session.clock.fire_due()

    def test_timed_out_question_is_reclaimed_and_reissued(self):
        session, _pool = self.make_session()
        first = session.next_question()["question"]
        self.fire(session)
        stats = session.stats()
        assert stats["timeouts"] == 1 and stats["outstanding"] == 0
        assert_books_balance(session)
        reissued = session.next_question()["question"]
        assert reissued["question_id"] != first["question_id"]
        # Same question, next member in the rotation.
        assert reissued.get("rule") == first.get("rule")
        assert reissued["member"] != first["member"]
        assert session.stats()["retried"] == 1
        assert_books_balance(session)

    def test_answer_after_timeout_is_unknown(self):
        session, pool = self.make_session()
        question = session.next_question()["question"]
        answer = pool.answer(question)
        self.fire(session)
        outcome = session.post_answer(question["question_id"], answer)
        assert outcome["status"] == "unknown"
        assert session.miner.questions_asked == 0
        assert_books_balance(session)

    def test_retries_exhaust_into_a_drop(self):
        session, _pool = self.make_session(max_retries=0)
        session.next_question()
        self.fire(session)
        assert session.stats()["dropped"] == 1
        assert_books_balance(session)

    def test_answering_cancels_the_timeout(self):
        session, pool = self.make_session()
        question = session.next_question()["question"]
        session.post_answer(question["question_id"], pool.answer(question))
        self.fire(session)
        assert session.stats()["timeouts"] == 0
        assert len(session.clock) == 0

    def test_bad_serve_config_rejected(self):
        with pytest.raises(ConfigurationError):
            ServeConfig(timeout=0.0)
        with pytest.raises(ConfigurationError):
            ServeConfig(max_retries=-1)


class TestSnapshotRoundTrip:
    def test_snapshot_restores_books_and_pending(self):
        session, pool = run_session_inprocess(SCENARIO)
        for _ in range(3):
            question = session.next_question()["question"]
            session.post_answer(question["question_id"], pool.answer(question))
        outstanding = session.next_question()["question"]

        snapshot = ServeSnapshot.from_doc(session.serve_snapshot())
        assert snapshot.kind == "serve"
        fresh, _ = run_session_inprocess(SCENARIO)
        fresh.restore(snapshot)
        assert fresh.stats()["issued"] == session.stats()["issued"]
        assert fresh.outstanding == 1
        # The restored session re-offers the outstanding question
        # verbatim: same id, same member, same rule.
        reoffered = fresh.next_question()
        assert reoffered["status"] == "ok"
        assert reoffered["question"] == outstanding

    def test_question_ids_continue_after_restore(self):
        session, pool = run_session_inprocess(SCENARIO)
        question = session.next_question()["question"]
        session.post_answer(question["question_id"], pool.answer(question))
        snapshot = ServeSnapshot.from_doc(session.serve_snapshot())
        fresh, _ = run_session_inprocess(SCENARIO)
        fresh.restore(snapshot)
        next_doc = fresh.next_question()
        assert next_doc["question"]["question_id"] == "q2"


class TestSessionManager:
    def make_manager(self):
        return SessionManager(clock=RealTimeClock())

    def spec(self, **overrides):
        doc = {"n_members": 4, "support": 0.1, "confidence": 0.5, "budget": 20}
        doc.update(overrides)
        return doc

    def test_create_and_list(self):
        manager = self.make_manager()
        session = manager.create(self.spec(id="alpha"))
        assert session.session_id == "alpha"
        assert manager.get("alpha") is session
        listed = manager.list_doc()["sessions"]
        assert [doc["session"] for doc in listed] == ["alpha"]

    def test_auto_ids_never_collide(self):
        manager = self.make_manager()
        manager.create(self.spec(id="s1"))
        auto = manager.create(self.spec())
        assert auto.session_id == "s2"

    @pytest.mark.parametrize(
        "spec_patch",
        [
            {"id": "../escape"},
            {"id": ""},
            {"id": ".hidden"},
            {"n_members": 0},
            {"n_members": None, "members": ["a", "a"]},
            {"support": "lots"},
            {"budget": 0},
            {"seed_rules": ["not a rule key"]},
            {"timeout": -1},
        ],
    )
    def test_bad_specs_rejected(self, spec_patch):
        manager = self.make_manager()
        doc = self.spec()
        doc.update(spec_patch)
        doc = {k: v for k, v in doc.items() if v is not None}
        with pytest.raises(ServeError):
            manager.create(doc)

    def test_duplicate_ids_rejected(self):
        manager = self.make_manager()
        manager.create(self.spec(id="alpha"))
        with pytest.raises(ServeError):
            manager.create(self.spec(id="alpha"))

    def test_unknown_session_raises_key_error(self):
        with pytest.raises(KeyError):
            self.make_manager().get("ghost")

    def test_drain_all_counts_sessions(self):
        manager = self.make_manager()
        manager.create(self.spec(id="a"))
        manager.create(self.spec(id="b"))
        assert manager.drain_all() == 2
        assert all(session.draining for session in manager.sessions.values())

    def test_status_doc_shape(self):
        manager = self.make_manager()
        session = manager.create(self.spec(id="alpha"))
        doc = session.status_doc()
        assert doc["session"] == "alpha"
        assert doc["budget"] == 20 and doc["budget_left"] == 20
        assert doc["members"] == 4 and doc["members_available"] == 4
        assert doc["serve"]["issued"] == 0
