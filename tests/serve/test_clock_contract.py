"""The scheduling contract, pinned over both clock implementations.

:class:`~repro.dispatch.EventClock` (simulated time) and
:class:`~repro.serve.RealTimeClock` (wall time) must agree on every
determinism-relevant behaviour of the
:class:`~repro.dispatch.SchedulerClock` protocol — ordering,
tie-breaking, cancellation, re-arming after a drain, input validation —
because the differential harness swaps one for the other under a live
session and asserts byte-identical transcripts. Only the time *source*
may differ.

Property tests drive both clocks through the same randomized schedules
and compare against the contract directly; wall-time cases use
millisecond-scale horizons so the suite stays fast.
"""

import asyncio
import math

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.dispatch import EventClock, SchedulerClock
from repro.serve import RealTimeClock

#: Per-slot spacing: whole seconds on the simulated clock, a couple of
#: milliseconds of real sleeping on the wall clock.
SLOT = {"sim": 1.0, "real": 0.002}
#: Headroom between "now" at scheduling time and the first slot, so a
#: slow machine cannot make slot 0 land in the past.
LEAD = {"sim": 1.0, "real": 0.05}

CLOCK_KINDS = ["sim", "real"]


def make_clock(kind):
    return EventClock() if kind == "sim" else RealTimeClock()


def fire_all(clock):
    """Drive either clock until its queue is empty; count events fired."""
    if isinstance(clock, RealTimeClock):
        return asyncio.run(clock.drain())
    fired = 0
    while clock.pop():
        fired += 1
    return fired


#: One schedule: (time slot, cancel it afterwards?) per event.
SCHEDULES = st.lists(
    st.tuples(st.integers(0, 6), st.booleans()), min_size=1, max_size=12
)

RELAXED = settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


class TestProtocol:
    @pytest.mark.parametrize("kind", CLOCK_KINDS)
    def test_satisfies_scheduler_clock(self, kind):
        assert isinstance(make_clock(kind), SchedulerClock)


class TestOrderingProperties:
    @pytest.mark.parametrize("kind", CLOCK_KINDS)
    @RELAXED
    @given(schedule=SCHEDULES)
    def test_fires_in_time_then_schedule_order(self, kind, schedule):
        """Events fire sorted by (instant, schedule order); cancelled
        events never fire; len/peek_time see exactly the live set."""
        clock = make_clock(kind)
        base = clock.now + LEAD[kind]
        fired = []
        live = []
        events = []
        for index, (slot, cancel) in enumerate(schedule):
            at = base + slot * SLOT[kind]
            event = clock.schedule_at(at, lambda index=index: fired.append(index))
            events.append((event, cancel))
            if not cancel:
                live.append((at, index))
        for event, cancel in events:
            if cancel:
                event.cancel()
        assert len(clock) == len(live)
        expected_peek = min((at for at, _ in live), default=None)
        if expected_peek is None:
            assert clock.peek_time() is None
        else:
            assert clock.peek_time() == pytest.approx(expected_peek)
        count = fire_all(clock)
        assert count == len(live)
        assert fired == [index for _, index in sorted(live)]
        assert len(clock) == 0
        assert clock.peek_time() is None

    @pytest.mark.parametrize("kind", CLOCK_KINDS)
    @RELAXED
    @given(slots=st.lists(st.integers(0, 4), min_size=1, max_size=8))
    def test_relative_schedule_matches_absolute(self, kind, slots):
        """schedule(delay) is schedule_at(now + delay): same firing order."""
        clock = make_clock(kind)
        lead = LEAD[kind]
        fired = []
        for index, slot in enumerate(slots):
            clock.schedule(
                lead + slot * SLOT[kind], lambda index=index: fired.append(index)
            )
        fire_all(clock)
        # On the wall clock "now" creeps between calls, so equal slots
        # keep schedule order and distinct slots keep slot order —
        # exactly the (time, seq) sort.
        assert fired == sorted(range(len(slots)), key=lambda i: (slots[i], i))


class TestRearmAfterDrain:
    @pytest.mark.parametrize("kind", CLOCK_KINDS)
    def test_rearm_after_full_drain(self, kind):
        """An emptied clock accepts and fires a fresh schedule."""
        clock = make_clock(kind)
        fired = []
        clock.schedule(SLOT[kind], lambda: fired.append("first"))
        assert fire_all(clock) == 1
        clock.schedule(SLOT[kind], lambda: fired.append("second"))
        assert fire_all(clock) == 1
        assert fired == ["first", "second"]

    @pytest.mark.parametrize("kind", CLOCK_KINDS)
    def test_actions_may_schedule_transitively(self, kind):
        """An action scheduling further events keeps the drain going."""
        clock = make_clock(kind)
        fired = []

        def chain(n):
            fired.append(n)
            if n < 3:
                clock.schedule(SLOT[kind], lambda: chain(n + 1))

        clock.schedule(SLOT[kind], lambda: chain(0))
        assert fire_all(clock) == 4
        assert fired == [0, 1, 2, 3]


class TestValidationParity:
    """Both clocks must reject exactly the same inputs."""

    @pytest.mark.parametrize("kind", CLOCK_KINDS)
    @pytest.mark.parametrize("delay", [-1.0, -0.001, math.nan])
    def test_bad_delays_rejected(self, kind, delay):
        with pytest.raises(ValueError):
            make_clock(kind).schedule(delay, lambda: None)

    @pytest.mark.parametrize("kind", CLOCK_KINDS)
    def test_scheduling_in_the_past_rejected(self, kind):
        clock = make_clock(kind)
        with pytest.raises(ValueError):
            clock.schedule_at(clock.now - 1.0, lambda: None)

    @pytest.mark.parametrize("kind", CLOCK_KINDS)
    @pytest.mark.parametrize("at", [math.inf, math.nan])
    def test_non_finite_instants_rejected(self, kind, at):
        with pytest.raises(ValueError):
            make_clock(kind).schedule_at(at, lambda: None)

    @pytest.mark.parametrize("kind", CLOCK_KINDS)
    def test_rejected_schedules_leave_queue_untouched(self, kind):
        clock = make_clock(kind)
        clock.schedule(SLOT[kind], lambda: None)
        for attempt in (
            lambda: clock.schedule(-1.0, lambda: None),
            lambda: clock.schedule_at(math.inf, lambda: None),
        ):
            with pytest.raises(ValueError):
                attempt()
        assert len(clock) == 1


class TestRealTimeRunner:
    """The wall clock's background mode (start/stop), serving-style."""

    def test_runner_fires_without_explicit_draining(self):
        async def scenario():
            clock = RealTimeClock()
            clock.start()
            fired = asyncio.Event()
            clock.schedule(0.01, fired.set)
            await asyncio.wait_for(fired.wait(), timeout=2.0)
            await clock.stop()
            assert len(clock) == 0

        asyncio.run(scenario())

    def test_nearer_deadline_interrupts_current_sleep(self):
        async def scenario():
            clock = RealTimeClock()
            clock.start()
            fired = []
            done = asyncio.Event()
            clock.schedule(0.25, lambda: (fired.append("far"), done.set()))
            clock.schedule(0.01, lambda: fired.append("near"))
            await asyncio.wait_for(done.wait(), timeout=2.0)
            await clock.stop()
            assert fired == ["near", "far"]

        asyncio.run(scenario())

    def test_stop_keeps_pending_events_queued(self):
        async def scenario():
            clock = RealTimeClock()
            clock.start()
            clock.schedule(30.0, lambda: None)
            await clock.stop()
            assert len(clock) == 1

        asyncio.run(scenario())

    def test_start_is_idempotent(self):
        async def scenario():
            clock = RealTimeClock()
            clock.start()
            runner = clock._runner
            clock.start()
            assert clock._runner is runner
            await clock.stop()

        asyncio.run(scenario())
