"""The wire codec: documents round-trip, garbage folds to malformed.

Float stats must survive JSON encoding *exactly* (repr-based float
serialization round-trips), because the differential harness compares
fingerprints computed from answers that crossed the wire against ones
computed entirely in-process.
"""

import json

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core import Itemset, Rule
from repro.crowd.questions import ClosedAnswer, ClosedQuestion, MalformedAnswer, OpenAnswer, OpenQuestion
from repro.core.measures import RuleStats
from repro.miner.crowdminer import QuestionProposal
from repro.miner.result import QuestionKind
from repro.serve import answer_from_doc, answer_to_doc, question_to_doc
from repro.storage.records import rule_key

RULE = Rule(["cough"], ["tea"])
OTHER = Rule(["headache"], ["honey"])


def closed_proposal(member="w1", rule=RULE):
    return QuestionProposal(
        member_id=member, kind=QuestionKind.CLOSED, rule=rule, context=None,
        kb_version=0,
    )


def open_proposal(member="w1", context=None):
    return QuestionProposal(
        member_id=member, kind=QuestionKind.OPEN, rule=None, context=context,
        kb_version=0,
    )


class TestQuestionDocs:
    def test_closed_question_carries_the_rule_key(self):
        doc = question_to_doc("q1", closed_proposal())
        assert doc == {
            "question_id": "q1",
            "member": "w1",
            "kind": "closed",
            "rule": rule_key(RULE),
        }

    def test_open_question_carries_context_and_sorted_exclude(self):
        doc = question_to_doc(
            "q2",
            open_proposal(context=Itemset(["cough"])),
            exclude={RULE, OTHER},
        )
        assert doc["kind"] == "open"
        assert doc["context"] == ["cough"]
        assert doc["exclude"] == sorted([rule_key(RULE), rule_key(OTHER)])

    def test_blind_open_question_has_null_context(self):
        doc = question_to_doc("q3", open_proposal())
        assert doc["context"] is None
        assert doc["exclude"] == []

    def test_question_docs_are_json_serializable(self):
        doc = question_to_doc("q4", closed_proposal())
        assert json.loads(json.dumps(doc)) == doc


class TestAnswerRoundTrips:
    @given(
        pair=st.tuples(st.floats(0.0, 1.0), st.floats(0.0, 1.0)).map(sorted)
    )
    def test_closed_answer_round_trips_exactly(self, pair):
        support, confidence = pair  # RuleStats requires support ≤ confidence
        answer = ClosedAnswer(
            member_id="w1",
            question=ClosedQuestion(RULE),
            stats=RuleStats(support, confidence),
        )
        doc = json.loads(json.dumps(answer_to_doc(answer)))
        parsed = answer_from_doc(closed_proposal(), doc)
        assert isinstance(parsed, ClosedAnswer)
        assert parsed.member_id == "w1"
        assert parsed.rule == RULE
        # Bit-exact: the fingerprint depends on it.
        assert parsed.stats == answer.stats

    def test_open_volunteered_round_trips(self):
        answer = OpenAnswer(
            member_id="w2",
            question=OpenQuestion(),
            rule=OTHER,
            stats=RuleStats(0.25, 0.75),
        )
        doc = json.loads(json.dumps(answer_to_doc(answer)))
        parsed = answer_from_doc(open_proposal(member="w2"), doc)
        assert isinstance(parsed, OpenAnswer)
        assert parsed.rule == OTHER
        assert parsed.stats == answer.stats

    def test_open_empty_round_trips(self):
        answer = OpenAnswer(
            member_id="w2", question=OpenQuestion(), rule=None, stats=None
        )
        doc = answer_to_doc(answer)
        assert doc == {"empty": True}
        parsed = answer_from_doc(open_proposal(member="w2"), doc)
        assert isinstance(parsed, OpenAnswer) and parsed.is_empty

    def test_open_answer_question_rebuilds_the_context(self):
        context = Itemset(["cough"])
        parsed = answer_from_doc(
            open_proposal(context=context), {"empty": True}
        )
        assert isinstance(parsed, OpenAnswer)
        assert parsed.question.context == context

    def test_malformed_report_round_trips(self):
        answer = MalformedAnswer(
            member_id="w3",
            question=ClosedQuestion(RULE),
            raw_text="lots, definitely",
            error="not a number",
        )
        doc = answer_to_doc(answer)
        parsed = answer_from_doc(closed_proposal(member="w3"), doc)
        assert isinstance(parsed, MalformedAnswer)
        assert parsed.raw_text == "lots, definitely"
        assert parsed.error == "not a number"


class TestGarbageFoldsToMalformed:
    """Wire garbage is crowd behaviour, not a protocol error."""

    @pytest.mark.parametrize(
        "doc",
        [
            {},                                        # nothing at all
            {"support": 0.5},                          # half the pair
            {"support": "plenty", "confidence": 0.5},  # non-numeric
            {"support": True, "confidence": 0.5},      # bool masquerading
            {"support": 1.5, "confidence": 0.5},       # out of range
            {"support": 0.2, "confidence": float("nan")},
            "just a string",                           # not an object
            None,
        ],
    )
    def test_bad_closed_docs(self, doc):
        parsed = answer_from_doc(closed_proposal(), doc)
        assert isinstance(parsed, MalformedAnswer)
        assert parsed.member_id == "w1"

    @pytest.mark.parametrize(
        "doc",
        [
            {"rule": "not json", "support": 0.5, "confidence": 0.5},
            {"rule": "[[],[]]", "support": 0.5, "confidence": 0.5},  # empty rule
            {"rule": rule_key(RULE)},                  # stats missing
            {"rule": rule_key(RULE), "support": 2.0, "confidence": 0.5},
        ],
    )
    def test_bad_open_docs(self, doc):
        parsed = answer_from_doc(open_proposal(), doc)
        assert isinstance(parsed, MalformedAnswer)

    def test_malformed_preserves_the_offending_payload(self):
        doc = {"support": "plenty", "confidence": 0.5}
        parsed = answer_from_doc(closed_proposal(), doc)
        assert isinstance(parsed, MalformedAnswer)
        assert "plenty" in parsed.raw_text
