"""Exactly-once semantics: idempotency keys, dedup, backpressure.

The server-side half of the retry story, exercised without HTTP. A
client that never saw a response cannot know whether the server acted,
so it retries with the same idempotency key — and the session must
fold every replay into the first delivery: a replayed *fetch* returns
the same question without issuing a new one, a replayed *answer post*
returns the memoized outcome without touching the books, and the dedup
table itself rides inside checkpoints so a crash between delivery and
retry cannot resurrect a double-count.
"""

import pytest

from repro.serve import Scenario, ServeConfig
from repro.serve.differential import run_session_inprocess
from repro.serve.session import _DEDUP_CAP, ServeSnapshot
from repro.storage import MemoryBackend

SCENARIO = Scenario(n_members=6, transactions_per_member=40, budget=30)


def fresh_session(**config):
    session, pool = run_session_inprocess(
        SCENARIO, config=ServeConfig(**config) if config else None
    )
    return session, pool


class TestFetchDedup:
    def test_replayed_fetch_returns_same_question_without_issuing(self):
        session, _pool = fresh_session()
        first = session.next_question(idempotency_key="f0")
        replay = session.next_question(idempotency_key="f0")
        assert replay == first
        assert session.stats()["issued"] == 1
        assert session.stats()["outstanding"] == 1
        assert session.stats()["dedup_hits"] == 1

    def test_distinct_keys_issue_distinct_questions(self):
        session, _pool = fresh_session()
        a = session.next_question(idempotency_key="f0")
        b = session.next_question(idempotency_key="f1")
        assert a["question"]["question_id"] != b["question"]["question_id"]
        assert session.stats()["issued"] == 2

    def test_keyless_fetch_bypasses_dedup(self):
        session, _pool = fresh_session()
        a = session.next_question()
        b = session.next_question()
        assert a["question"]["question_id"] != b["question"]["question_id"]
        assert session.stats()["dedup_hits"] == 0


class TestAnswerDedup:
    def test_replayed_answer_post_is_folded_into_first_delivery(self):
        session, pool = fresh_session()
        doc = session.next_question(idempotency_key="f0")
        question = doc["question"]
        answer = pool.answer(question)
        qid = question["question_id"]
        first = session.post_answer(qid, answer, idempotency_key=f"a-{qid}")
        replay = session.post_answer(qid, answer, idempotency_key=f"a-{qid}")
        assert replay == first
        assert session.stats()["answered"] == 1
        assert session.stats()["dedup_hits"] == 1
        # Without the key, the replay would land as a stale post.
        assert session.stats()["stale"] == 0

    def test_replay_after_the_question_is_gone_still_memoized(self):
        session, pool = fresh_session()
        doc = session.next_question(idempotency_key="f0")
        question = doc["question"]
        qid = question["question_id"]
        session.post_answer(qid, pool.answer(question), idempotency_key=f"a-{qid}")
        # Drive a few more exchanges so the pending book moves on.
        for n in range(3):
            doc = session.next_question(idempotency_key=f"f{n + 1}")
            q = doc["question"]
            session.post_answer(
                q["question_id"],
                pool.answer(q),
                idempotency_key=f"a-{q['question_id']}",
            )
        replay = session.post_answer(
            qid, pool.answer(question), idempotency_key=f"a-{qid}"
        )
        assert replay["status"] == "counted"
        assert session.stats()["answered"] == 4
        assert session.stats()["stale"] == 0

    def test_dedup_table_is_fifo_bounded(self):
        session, _pool = fresh_session()
        for n in range(_DEDUP_CAP + 10):
            session._dedup_put(f"k{n}", {"n": n})
        assert len(session._dedup) == _DEDUP_CAP
        assert not session.knows_key("k0")
        assert session.knows_key(f"k{_DEDUP_CAP + 9}")


class TestBackpressure:
    def test_overloaded_flips_at_the_bound(self):
        session, pool = fresh_session(max_outstanding=2)
        assert not session.overloaded
        session.next_question(idempotency_key="f0")
        assert not session.overloaded
        doc = session.next_question(idempotency_key="f1")
        assert session.overloaded
        question = doc["question"]
        session.post_answer(
            question["question_id"],
            pool.answer(question),
            idempotency_key=f"a-{question['question_id']}",
        )
        assert not session.overloaded

    def test_known_key_replay_is_never_backpressured(self):
        # The deadlock guard: rejecting a deduped fetch replay would
        # wedge a client whose original fetch issued a question it
        # never saw. The route lets known keys through the 429 gate.
        session, _pool = fresh_session(max_outstanding=1)
        session.next_question(idempotency_key="f0")
        assert session.overloaded
        assert session.knows_key("f0")
        assert not session.knows_key("f1")

    def test_backpressure_counter_sits_outside_the_books(self):
        session, _pool = fresh_session(max_outstanding=1)
        session.next_question(idempotency_key="f0")
        session.count_backpressure()
        stats = session.stats()
        assert stats["backpressured"] == 1
        assert stats["issued"] == 1
        fates = (
            stats["answered"] + stats["stale"] + stats["malformed"]
            + stats["rejected"] + stats["gone"] + stats["timeouts"]
            + stats["outstanding"]
        )
        assert stats["issued"] == fates

    def test_max_outstanding_validation(self):
        from repro.errors import ConfigurationError

        with pytest.raises(ConfigurationError):
            ServeConfig(max_outstanding=-1)


class TestDedupDurability:
    def test_dedup_table_rides_in_the_snapshot(self):
        session, pool = fresh_session()
        doc = session.next_question(idempotency_key="f0")
        question = doc["question"]
        qid = question["question_id"]
        session.post_answer(qid, pool.answer(question), idempotency_key=f"a-{qid}")
        snapshot = ServeSnapshot.from_doc(session.serve_snapshot())
        assert f"a-{qid}" in snapshot.dedup
        assert "f0" in snapshot.dedup

    def test_restore_replays_the_saved_dedup_table(self):
        session, pool = fresh_session()
        doc = session.next_question(idempotency_key="f0")
        question = doc["question"]
        qid = question["question_id"]
        outcome = session.post_answer(
            qid, pool.answer(question), idempotency_key=f"a-{qid}"
        )
        snapshot = ServeSnapshot.from_doc(session.serve_snapshot())

        resumed, _pool = fresh_session()
        resumed.restore(snapshot)
        answered_before = resumed.stats()["answered"]
        replay = resumed.post_answer(
            qid, pool.answer(question), idempotency_key=f"a-{qid}"
        )
        assert replay == outcome
        assert resumed.stats()["answered"] == answered_before

    def test_pre_dedup_checkpoints_restore_with_empty_table(self):
        # Snapshots written before the chaos PR carry no "dedup" key.
        session, _pool = fresh_session()
        doc = session.serve_snapshot()
        doc.pop("dedup")
        snapshot = ServeSnapshot.from_doc(doc)
        assert snapshot.dedup == {}

    def test_durable_session_checkpoint_carries_dedup(self):
        storage = MemoryBackend()
        session, pool = run_session_inprocess(
            SCENARIO, storage=storage, checkpoint_every=1
        )
        doc = session.next_question(idempotency_key="f0")
        question = doc["question"]
        qid = question["question_id"]
        session.post_answer(qid, pool.answer(question), idempotency_key=f"a-{qid}")
        from repro.storage import load_session

        miner, snapshot, _info = load_session(storage)
        assert isinstance(snapshot, ServeSnapshot)
        assert f"a-{qid}" in snapshot.dedup
