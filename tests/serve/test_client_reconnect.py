"""Client-side connection-fault behavior: reconnect once, retry with care.

``JsonClient`` holds one keep-alive connection. A server may close it
between requests (idle timeout, restart, drain) and the stale socket
only surfaces on the *next* use — that failure must reconnect and
replay transparently, because the request never reached the new
connection. A failure on a fresh connection is a real fault and must
surface: blind replay is only safe one layer up, in
``RetryingClient``, where idempotency keys protect it.
"""

import asyncio

import pytest

from repro.serve.http import JsonClient, RetryingClient, encode_response, read_request


class FlakyServer:
    """An HTTP server that hangs up after every response."""

    def __init__(self, *, fail_first_requests: int = 0) -> None:
        self.connections = 0
        self.requests = 0
        self._fail_first = fail_first_requests
        self._server: asyncio.base_events.Server | None = None

    async def start(self) -> int:
        self._server = await asyncio.start_server(self._handle, "127.0.0.1", 0)
        return self._server.sockets[0].getsockname()[1]

    async def stop(self) -> None:
        assert self._server is not None
        self._server.close()
        await self._server.wait_closed()

    async def _handle(self, reader, writer) -> None:
        self.connections += 1
        try:
            request = await read_request(reader)
            if request is None:
                return
            self.requests += 1
            if self.requests <= self._fail_first:
                return  # connection cut before any response: a real fault
            # Claim keep-alive, then hang up anyway: the client's next
            # request hits a stale socket.
            writer.write(encode_response(200, {"n": self.requests}))
            await writer.drain()
        finally:
            writer.close()


class TestStaleKeepAlive:
    def test_second_request_reconnects_transparently(self):
        async def go():
            server = FlakyServer()
            port = await server.start()
            client = JsonClient("127.0.0.1", port)
            try:
                status1, doc1 = await client.request("GET", "/a")
                status2, doc2 = await client.request("GET", "/b")
            finally:
                await client.aclose()
                await server.stop()
            return server, (status1, doc1), (status2, doc2)

        server, first, second = asyncio.run(go())
        assert first == (200, {"n": 1})
        assert second == (200, {"n": 2})
        assert server.connections == 2  # one silent reconnect, no error

    def test_fresh_connection_failure_surfaces(self):
        async def go():
            server = FlakyServer(fail_first_requests=10)
            port = await server.start()
            client = JsonClient("127.0.0.1", port)
            try:
                with pytest.raises((ConnectionError, asyncio.IncompleteReadError)):
                    await client.request("GET", "/a")
            finally:
                await client.aclose()
                await server.stop()
            return server

        server = asyncio.run(go())
        # Exactly one connection: a fresh-socket failure is not replayed.
        assert server.connections == 1

    def test_server_gone_entirely_raises(self):
        async def go():
            server = FlakyServer()
            port = await server.start()
            await server.stop()
            client = JsonClient("127.0.0.1", port)
            with pytest.raises(OSError):
                await client.request("GET", "/a")

        asyncio.run(go())


class TestRetryingClient:
    def test_retries_through_cut_connections(self):
        async def go():
            server = FlakyServer(fail_first_requests=3)
            port = await server.start()
            client = RetryingClient(
                JsonClient("127.0.0.1", port), seed=1, base_delay=0.001
            )
            try:
                status, doc = await client.request("GET", "/a")
            finally:
                await client.aclose()
                await server.stop()
            return client, status, doc

        client, status, doc = asyncio.run(go())
        assert (status, doc) == (200, {"n": 4})
        assert client.retries >= 1

    def test_gives_up_after_max_attempts(self):
        async def go():
            server = FlakyServer(fail_first_requests=10**6)
            port = await server.start()
            client = RetryingClient(
                JsonClient("127.0.0.1", port),
                seed=1,
                max_attempts=3,
                base_delay=0.001,
            )
            try:
                with pytest.raises(ConnectionError, match="after 3 attempts"):
                    await client.request("GET", "/a")
            finally:
                await client.aclose()
                await server.stop()
            return server

        server = asyncio.run(go())
        assert server.requests == 3

    def test_backoff_delays_are_seeded_and_capped(self):
        a = RetryingClient(object(), seed=42, base_delay=0.01, max_delay=0.25)
        b = RetryingClient(object(), seed=42, base_delay=0.01, max_delay=0.25)
        delays_a = [a._delay(n) for n in range(12)]
        delays_b = [b._delay(n) for n in range(12)]
        assert delays_a == delays_b
        assert all(d <= 0.25 for d in delays_a)
        assert all(d > 0 for d in delays_a)

    def test_honors_retry_after_on_429(self):
        class Overloaded:
            def __init__(self):
                self.calls = 0
                self.last_headers = {}

            async def request(self, method, path, doc=None):
                self.calls += 1
                if self.calls < 3:
                    self.last_headers = {"retry-after": "0.001"}
                    return 429, {"status": "overloaded"}
                self.last_headers = {}
                return 200, {"ok": True}

            async def aclose(self):
                pass

        async def go():
            inner = Overloaded()
            client = RetryingClient(inner, seed=1, base_delay=0.001)
            status, doc = await client.request("POST", "/x")
            return inner, client, status, doc

        inner, client, status, doc = asyncio.run(go())
        assert (status, doc) == (200, {"ok": True})
        assert inner.calls == 3
        assert client.backoffs == 2
