"""Shared fixtures for the test suite.

Expensive world-building (populations, ground truths) is cached at
session scope; tests must treat those objects as read-only. Anything a
test mutates (crowds, miners) is built per-test from the cached
populations.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import ItemDomain, Itemset, Rule, TransactionDB
from repro.crowd import SimulatedCrowd, standard_answer_model
from repro.estimation import Thresholds
from repro.miner import compute_ground_truth
from repro.synth import build_population, folk_remedies_model


@pytest.fixture
def rng():
    """A fresh deterministic generator per test."""
    return np.random.default_rng(1234)


@pytest.fixture
def tiny_domain():
    """Four items in two categories."""
    return ItemDomain.from_categories(
        {"symptom": ["cough", "headache"], "remedy": ["tea", "honey"]}
    )


@pytest.fixture
def tiny_db():
    """A hand-checkable six-transaction database.

    Supports (out of 6): cough 4/6, tea 4/6, honey 2/6,
    {cough, tea} 3/6, {cough, tea, honey} 1/6, headache 1/6.
    """
    return TransactionDB(
        [
            ["cough", "tea"],
            ["cough", "tea", "honey"],
            ["cough", "tea"],
            ["cough"],
            ["tea", "headache"],
            ["honey"],
        ]
    )


@pytest.fixture
def simple_rule():
    return Rule(["cough"], ["tea"])


@pytest.fixture
def thresholds():
    return Thresholds(0.10, 0.5)


@pytest.fixture(scope="session")
def folk_model():
    return folk_remedies_model(seed=1)


@pytest.fixture(scope="session")
def folk_population(folk_model):
    """A 25-member folk-remedies population (read-only!)."""
    return build_population(
        folk_model, n_members=25, transactions_per_member=120, seed=2
    )


@pytest.fixture(scope="session")
def folk_truth(folk_population):
    return compute_ground_truth(folk_population, Thresholds(0.10, 0.5))


@pytest.fixture
def folk_crowd(folk_population):
    """A fresh crowd over the shared population (mutable per-test)."""
    return SimulatedCrowd.from_population(
        folk_population, answer_model=standard_answer_model(), seed=3
    )


def make_itemset(*items: str) -> Itemset:
    """Tiny helper used across test modules."""
    return Itemset(items)
