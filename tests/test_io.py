"""Tests for JSON persistence."""

import pytest

from repro.core import Rule, RuleStats, TransactionDB
from repro.io import (
    PersistenceError,
    cache_from_json,
    cache_to_json,
    db_from_json,
    db_to_json,
    load_json,
    result_from_json,
    result_to_json,
    rule_from_json,
    rule_to_json,
    save_json,
    stats_from_json,
    stats_to_json,
)
from repro.miner import AnswerCache, MiningResult


class TestPrimitives:
    def test_rule_roundtrip(self):
        rule = Rule(["sore throat", "cough"], ["ginger tea"])
        assert rule_from_json(rule_to_json(rule)) == rule

    def test_itemset_rule_roundtrip(self):
        rule = Rule.itemset_rule(["honey"])
        assert rule_from_json(rule_to_json(rule)) == rule

    def test_rule_with_punctuation_items(self):
        rule = Rule(["a -> b; weird, item"], ["x"])
        assert rule_from_json(rule_to_json(rule)) == rule

    def test_stats_roundtrip(self):
        stats = RuleStats(0.25, 0.75)
        assert stats_from_json(stats_to_json(stats)) == stats

    def test_malformed_rule(self):
        with pytest.raises(PersistenceError):
            rule_from_json({"antecedent": ["a"]})

    def test_malformed_stats(self):
        with pytest.raises(PersistenceError):
            stats_from_json({"support": "lots"})


class TestCache:
    def make_cache(self):
        cache = AnswerCache()
        cache.record_closed("u1", Rule(["a"], ["b"]), RuleStats(0.2, 0.6))
        cache.record_open("u2", Rule(["c"], ["d"]), RuleStats(0.3, 0.7))
        return cache

    def test_roundtrip(self):
        cache = self.make_cache()
        restored = cache_from_json(cache_to_json(cache))
        assert restored.closed == cache.closed
        assert restored.volunteered == cache.volunteered

    def test_wrong_format_tag(self):
        with pytest.raises(PersistenceError, match="answer-cache"):
            cache_from_json({"format": "something-else", "version": 1})

    def test_wrong_version(self):
        doc = cache_to_json(self.make_cache())
        doc["version"] = 99
        with pytest.raises(PersistenceError, match="version"):
            cache_from_json(doc)


class TestResult:
    def make_result(self):
        return MiningResult(
            significant={Rule(["a"], ["b"]): RuleStats(0.3, 0.7)},
            questions_asked=42,
            closed_questions=30,
            open_questions=12,
            rules_discovered=9,
            inferred_classifications=2,
        )

    def test_roundtrip(self):
        result = self.make_result()
        restored = result_from_json(result_to_json(result))
        assert restored.significant == result.significant
        assert restored.questions_asked == 42
        assert restored.open_questions == 12

    def test_log_not_serialized(self):
        restored = result_from_json(result_to_json(self.make_result()))
        assert restored.log == []

    def test_malformed(self):
        doc = result_to_json(self.make_result())
        del doc["questions_asked"]
        with pytest.raises(PersistenceError):
            result_from_json(doc)


class TestDB:
    def test_roundtrip(self, tiny_db):
        restored = db_from_json(db_to_json(tiny_db))
        assert list(restored) == list(tiny_db)

    def test_empty_db(self):
        restored = db_from_json(db_to_json(TransactionDB([])))
        assert len(restored) == 0


class TestFiles:
    def test_save_and_load(self, tmp_path):
        cache = AnswerCache()
        cache.record_closed("u1", Rule(["a"], ["b"]), RuleStats(0.2, 0.6))
        path = tmp_path / "cache.json"
        save_json(cache_to_json(cache), path)
        restored = cache_from_json(load_json(path))
        assert restored.closed == cache.closed

    def test_invalid_json(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("{not json")
        with pytest.raises(PersistenceError, match="invalid JSON"):
            load_json(path)
