"""Adversarial answer models: coherence, collusion, drift, garble.

The property half of the robustness bar (ISSUE satellite): every
adversarial model — however hostile — must stay *representable*
(stats in [0, 1], confidence ≥ support) and compose cleanly with the
honest models, because the adversaries worth defending against are the
ones the type system cannot reject.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import Rule, RuleStats
from repro.crowd import (
    ComposedAnswerModel,
    ExactAnswerModel,
    LikertAnswerModel,
    NoisyAnswerModel,
    SimulatedCrowd,
    standard_answer_model,
)
from repro.crowd.questions import ClosedQuestion, MalformedAnswer
from repro.crowd.stream import parse_stats
from repro.errors import ConfigurationError
from repro.faults import (
    ADVERSARY_ROLES,
    CollusionRing,
    DriftingAnswerModel,
    GarbledMember,
    LazyExtremesModel,
    build_adversarial_crowd,
    garbage_text,
    parse_adversary_mix,
)


def stats_strategy():
    return st.tuples(
        st.floats(0.0, 1.0, allow_nan=False), st.floats(0.0, 1.0, allow_nan=False)
    ).map(lambda sc: RuleStats(min(sc), max(sc)))


#: Factories, not instances: DriftingAnswerModel is stateful, and each
#: hypothesis example must start from a fresh worker.
ADVERSARIAL_FACTORIES = [
    lambda: CollusionRing(seed=0).member_model(),
    lambda: DriftingAnswerModel(),
    lambda: DriftingAnswerModel(initial_sigma=0.5, drift=0.3, max_sigma=0.6),
    lambda: LazyExtremesModel(),
    lambda: LazyExtremesModel(split=0.2),
    lambda: ComposedAnswerModel([DriftingAnswerModel(), LikertAnswerModel()]),
    lambda: ComposedAnswerModel(
        [CollusionRing(seed=1).member_model(), NoisyAnswerModel(0.1)]
    ),
    lambda: ComposedAnswerModel([LazyExtremesModel(), DriftingAnswerModel()]),
]

RULE = Rule(["cough"], ["tea"])


class TestAdversarialCoherence:
    @settings(max_examples=40, deadline=None)
    @given(stats_strategy(), st.integers(0, 2**31 - 1))
    @pytest.mark.parametrize(
        "factory", ADVERSARIAL_FACTORIES, ids=lambda f: repr(f())
    )
    def test_reports_are_valid_stats(self, factory, stats, seed):
        model = factory()
        rng = np.random.default_rng(seed)
        for _ in range(5):  # stateful models must stay coherent over time
            reported = model.report(stats, rng)
            assert 0.0 <= reported.support <= reported.confidence <= 1.0

    @settings(max_examples=40, deadline=None)
    @given(stats_strategy(), st.integers(0, 2**31 - 1))
    @pytest.mark.parametrize(
        "factory", ADVERSARIAL_FACTORIES, ids=lambda f: repr(f())
    )
    def test_report_rule_is_valid_stats(self, factory, stats, seed):
        # The rule-aware path (used by closed questions) obeys the same
        # invariant as the plain path.
        model = factory()
        rng = np.random.default_rng(seed)
        reported = model.report_rule(RULE, stats, rng)
        assert 0.0 <= reported.support <= reported.confidence <= 1.0

    def test_composition_with_honest_standard_model(self, rng):
        # Adversaries drop into ComposedAnswerModel exactly like the
        # honest models do — closure under composition.
        model = ComposedAnswerModel(
            [DriftingAnswerModel(), standard_answer_model()]
        )
        reported = model.report(RuleStats(0.4, 0.8), rng)
        assert 0.0 <= reported.support <= reported.confidence <= 1.0


class TestCollusionRing:
    def test_fabricated_stats_stable_per_rule(self):
        ring = CollusionRing(seed=3)
        first = ring.fabricated_stats(RULE)
        assert ring.fabricated_stats(RULE) == first

    def test_members_agree_up_to_jitter(self, rng):
        ring = CollusionRing(seed=3, jitter=0.02)
        truth = RuleStats(0.9, 0.95)  # ignored by design
        a = ring.member_model().report_rule(RULE, truth, rng)
        b = ring.member_model().report_rule(RULE, truth, rng)
        assert abs(a.support - b.support) < 0.2  # coordinated, not honest
        fabricated = ring.fabricated_stats(RULE)
        assert abs(a.support - fabricated.support) < 0.2

    def test_zero_jitter_is_byte_identical_collusion(self, rng):
        ring = CollusionRing(seed=3, jitter=0.0)
        truth = RuleStats(0.1, 0.2)
        a = ring.member_model().report_rule(RULE, truth, rng)
        b = ring.member_model().report_rule(RULE, truth, rng)
        assert a == b == ring.fabricated_stats(RULE)


class TestDrifting:
    def test_sigma_grows_then_caps(self, rng):
        model = DriftingAnswerModel(initial_sigma=0.0, drift=0.25, max_sigma=0.6)
        sigmas = []
        for _ in range(6):
            sigmas.append(model.current_sigma)
            model.report(RuleStats(0.5, 0.5), rng)
        assert sigmas == [0.0, 0.25, 0.5, 0.6, 0.6, 0.6]

    def test_starts_honest(self, rng):
        model = DriftingAnswerModel(initial_sigma=0.0, drift=0.1)
        s = RuleStats(0.3, 0.7)
        assert model.report(s, rng) == s  # first answer: zero noise


class TestLazyExtremes:
    def test_snaps_to_extremes(self, rng):
        model = LazyExtremesModel()
        reported = model.report(RuleStats(0.45, 0.55), rng)
        assert reported == RuleStats(0.0, 1.0)

    def test_custom_split(self, rng):
        model = LazyExtremesModel(split=0.2)
        assert model.report(RuleStats(0.25, 0.3), rng) == RuleStats(1.0, 1.0)


class TestGarbageText:
    def test_never_parses(self, rng):
        # The whole point of the pool: every line must defeat the real
        # protocol parser (including "1.5 2.0" and "NaN NaN", which
        # float() happily accepts).
        for _ in range(200):
            text = garbage_text(rng)
            with pytest.raises(ValueError):
                parse_stats(text)


class TestGarbledMember:
    def _member(self, folk_population, rate):
        crowd = SimulatedCrowd.from_population(
            folk_population, answer_model=ExactAnswerModel(), seed=5
        )
        inner = crowd._members[crowd.available_members()[0]]
        return GarbledMember(inner, rate=rate, seed=7)

    def test_rate_one_always_malformed(self, folk_population):
        member = self._member(folk_population, 1.0)
        for _ in range(5):
            answer = member.answer_closed(ClosedQuestion(RULE))
            assert isinstance(answer, MalformedAnswer)
            assert answer.member_id == member.member_id

    def test_rate_zero_passes_through(self, folk_population):
        member = self._member(folk_population, 0.0)
        answer = member.answer_closed(ClosedQuestion(RULE))
        assert not isinstance(answer, MalformedAnswer)


class TestParseAdversaryMix:
    def test_round_trip(self):
        assert parse_adversary_mix("spammer:0.2, garbled:0.1") == (
            ("spammer", 0.2),
            ("garbled", 0.1),
        )

    def test_empty_spec_is_empty_mix(self):
        assert parse_adversary_mix("") == ()
        assert parse_adversary_mix("   ") == ()

    def test_zero_fraction_dropped(self):
        assert parse_adversary_mix("spammer:0.0,lazy:0.5") == (("lazy", 0.5),)

    @pytest.mark.parametrize(
        "spec",
        [
            "troll:0.2",  # unknown role
            "spammer:0.2,spammer:0.1",  # duplicate
            "spammer:lots",  # unparseable fraction
            "spammer:1.5",  # out of range
            "spammer:0.7,garbled:0.7",  # sums past 1
            "spammer",  # missing fraction
        ],
    )
    def test_bad_specs_rejected(self, spec):
        with pytest.raises(ConfigurationError):
            parse_adversary_mix(spec)


class TestBuildAdversarialCrowd:
    def test_roles_cover_requested_fractions(self, folk_population):
        crowd, roles = build_adversarial_crowd(
            folk_population,
            (("spammer", 0.2), ("garbled", 0.2)),
            seed=11,
        )
        counts = {role: 0 for role in (*ADVERSARY_ROLES, "honest")}
        for role in roles.values():
            counts[role] += 1
        n = len(roles)
        assert counts["spammer"] == round(0.2 * n)
        assert counts["garbled"] == round(0.2 * n)
        assert counts["honest"] == n - counts["spammer"] - counts["garbled"]

    def test_same_seed_same_roles(self, folk_population):
        mix = (("colluder", 0.3),)
        _, roles_a = build_adversarial_crowd(folk_population, mix, seed=11)
        _, roles_b = build_adversarial_crowd(folk_population, mix, seed=11)
        assert roles_a == roles_b

    def test_empty_mix_matches_from_population_byte_for_byte(
        self, folk_population
    ):
        # With no adversaries the builder must draw exactly the same
        # random stream as the standard construction — the guarantee
        # that lets the eval runner route everything through it.
        plain = SimulatedCrowd.from_population(
            folk_population, answer_model=standard_answer_model(), seed=5
        )
        built, roles = build_adversarial_crowd(
            folk_population, (), answer_model=standard_answer_model(), seed=5
        )
        assert set(roles.values()) == {"honest"}
        for member_id in plain.available_members():
            a = plain.ask_closed(member_id, RULE)
            b = built.ask_closed(member_id, RULE)
            assert a.stats == b.stats

    def test_garbled_members_emit_malformed(self, folk_population):
        crowd, roles = build_adversarial_crowd(
            folk_population, (("garbled", 0.2),), seed=11
        )
        garbled = [mid for mid, role in roles.items() if role == "garbled"]
        assert garbled
        answer = crowd.ask_closed(garbled[0], RULE)
        assert isinstance(answer, MalformedAnswer)
