"""The latent-ability trust model: coherence, fitting, quarantine.

Three layers pin the ISSUE's acceptance bars:

- unit: the support-antitonicity incoherence statistic (the
  unpoisonable anchor), the clean fast-path contract (exact unit
  trust, version untouched), and the quarantine gates;
- state: a trust shift reopens a settled rule and a recovered member
  produces fresh summaries (the purge/reopen machinery the quality
  loop reuses);
- session: a 30% collusion ring — the regime that poisoned the gold
  loop — gets quarantined with honest members untouched, and the
  counters/histogram surface the story.
"""

import pytest

from repro.core import Rule, RuleStats
from repro.estimation import Thresholds
from repro.estimation.aggregate import DynamicTrustAggregator
from repro.estimation.significance import Decision, SignificanceTest
from repro.faults import LatentAbilityModel, build_adversarial_crowd
from repro.miner import CrowdMiner, CrowdMinerConfig
from repro.miner.state import MiningState, RuleOrigin

THRESHOLDS = Thresholds(0.10, 0.5)

# A chain on the rule lattice: GENERAL.body ⊂ SPECIFIC.body, so any
# reported supp(SPECIFIC) > supp(GENERAL) is incoherent. TWIN shares
# SPECIFIC's body through the other antecedent split.
GENERAL = Rule([], ["ginger tea"])
SPECIFIC = Rule(["ginger tea"], ["honey"])
TWIN = Rule(["honey"], ["ginger tea"])


class TestIncoherence:
    def test_monotone_answers_are_coherent(self):
        model = LatentAbilityModel()
        model.observe_answer("m1", GENERAL, RuleStats(0.6, 0.6))
        model.observe_answer("m1", SPECIFIC, RuleStats(0.4, 0.7))
        assert model.incoherence_of("m1") == 0.0

    def test_violation_beyond_margin_counts(self):
        model = LatentAbilityModel(coherence_margin=0.1, coherence_prior=4.0)
        model.observe_answer("m1", GENERAL, RuleStats(0.2, 0.4))
        model.observe_answer("m1", SPECIFIC, RuleStats(0.6, 0.8))
        # gap 0.4, margin forgives 0.1, shrunk over 1 pair + 4 prior.
        assert model.incoherence_of("m1") == pytest.approx(0.3 / 5.0)

    def test_small_flip_inside_margin_forgiven(self):
        # Likert coarsening can flip a borderline pair by one step;
        # that must not read as fabrication.
        model = LatentAbilityModel(coherence_margin=0.1)
        model.observe_answer("m1", GENERAL, RuleStats(0.40, 0.5))
        model.observe_answer("m1", SPECIFIC, RuleStats(0.45, 0.6))
        assert model.incoherence_of("m1") == 0.0

    def test_equal_bodies_must_report_equal_supports(self):
        # SPECIFIC and TWIN share a body, so their supports are the
        # same personal quantity; disagreement is incoherence.
        model = LatentAbilityModel(coherence_margin=0.1)
        model.observe_answer("m1", SPECIFIC, RuleStats(0.2, 0.5))
        model.observe_answer("m1", TWIN, RuleStats(0.7, 0.9))
        assert model.incoherence_of("m1") == pytest.approx(0.4 / 5.0)

    def test_incomparable_rules_are_no_pairs(self):
        model = LatentAbilityModel()
        model.observe_answer("m1", Rule([], ["a"]), RuleStats(0.9, 0.9))
        model.observe_answer("m1", Rule([], ["b"]), RuleStats(0.1, 0.2))
        assert model.incoherence_of("m1") == 0.0
        ability_pairs = model._pairs.get("m1", 0)
        assert ability_pairs == 0


def feed_clean_matrix(model, n_members=5):
    """Honest-looking answers: everyone near the same per-rule truth."""
    rules = [
        (GENERAL, 0.6),
        (SPECIFIC, 0.4),
        (Rule([], ["camomile"]), 0.3),
        (Rule(["camomile"], ["lemon"]), 0.2),
    ]
    for i in range(n_members):
        offset = 0.02 * (i - n_members // 2)
        for rule, support in rules:
            s = min(1.0, max(0.0, support + offset))
            model.observe_answer(f"m{i}", rule, RuleStats(s, min(1.0, s + 0.3)))


class TestCleanFastPath:
    def test_clean_matrix_keeps_exact_unit_trust(self):
        model = LatentAbilityModel()
        feed_clean_matrix(model)
        changed = model.reestimate()
        assert not changed
        assert model.version == 0  # the aggregator cache token never moves
        for i in range(5):
            assert model.trust(f"m{i}") == 1.0  # exactly — fast-path contract
            ability = model.ability_of(f"m{i}")
            assert ability is not None
            assert ability.incoherence == 0.0
            assert ability.sigma < model.sigma_tolerance
        assert model.quarantine_candidates() == []

    def test_estimates_counter_and_due(self):
        model = LatentAbilityModel(reestimate_every=3)
        assert not model.due()
        model.observe_answer("m1", GENERAL, RuleStats(0.5, 0.6))
        model.observe_answer("m1", SPECIFIC, RuleStats(0.4, 0.6))
        assert not model.due()
        model.observe_malformed("m2")  # malformed strikes count too
        assert model.due()
        assert model.estimates == 0
        model.reestimate()
        assert model.estimates == 1
        assert not model.due()  # counter reset


class TestFabricationIsCaught:
    def feed(self, model):
        feed_clean_matrix(model)
        # The fabricator reports each rule independently: big support
        # on the specific rules, small on their generalizations.
        model.observe_answer("bad", GENERAL, RuleStats(0.1, 0.3))
        model.observe_answer("bad", SPECIFIC, RuleStats(0.9, 0.9))
        model.observe_answer("bad", Rule([], ["camomile"]), RuleStats(0.1, 0.2))
        model.observe_answer(
            "bad", Rule(["camomile"], ["lemon"]), RuleStats(0.8, 0.9)
        )

    def test_incoherent_member_loses_trust_and_version_bumps(self):
        model = LatentAbilityModel()
        self.feed(model)
        before = model.version
        changed = model.reestimate()
        assert changed
        assert model.version > before
        assert model.trust("bad") < 1.0
        assert model.ability_of("bad").incoherence > model.coherence_tolerance
        for i in range(5):
            assert model.trust(f"m{i}") == 1.0  # honest members untouched

    def test_version_stable_when_nothing_moves(self):
        model = LatentAbilityModel()
        self.feed(model)
        model.reestimate()
        version = model.version
        assert not model.reestimate()  # same matrix, same fit
        assert model.version == version

    def test_quarantine_cycle(self):
        model = LatentAbilityModel(min_answers=4, trust_floor=0.45)
        self.feed(model)
        model.reestimate()
        assert model.should_quarantine("bad")
        assert model.quarantine_candidates() == ["bad"]
        version = model.version
        model.mark_quarantined("bad")
        assert model.version > version  # quarantine invalidates summaries
        assert model.is_quarantined("bad")
        assert model.trust("bad") == 0.0
        assert not model.should_quarantine("bad")  # never twice
        assert model.quarantined == {"bad"}

    def test_min_answers_gates_quarantine(self):
        model = LatentAbilityModel(min_answers=10)
        self.feed(model)
        model.reestimate()
        assert model.trust("bad") < model.trust_floor
        assert not model.should_quarantine("bad")  # only 4 answers on record

    def test_malformed_only_member_is_caught(self):
        model = LatentAbilityModel(min_answers=4)
        feed_clean_matrix(model)
        for _ in range(5):
            model.observe_malformed("garbled")
        model.reestimate()
        ability = model.ability_of("garbled")
        assert ability is not None and ability.malformed == 5
        assert model.trust("garbled") < model.trust_floor
        assert model.should_quarantine("garbled")


class TestParameterValidation:
    def test_bad_parameters_rejected(self):
        with pytest.raises(Exception):
            LatentAbilityModel(trust_floor=1.5)
        with pytest.raises(Exception):
            LatentAbilityModel(reestimate_every=0)
        with pytest.raises(ValueError):
            LatentAbilityModel(prior_tau=0.0)
        with pytest.raises(Exception):
            LatentAbilityModel(anchor_gain=-1.0)
        with pytest.raises(Exception):
            LatentAbilityModel(min_answers=0)


class MutableTrust:
    """A trust source the test can move between assertions."""

    def __init__(self):
        self.values = {}
        self.version = 0

    def trust(self, member_id):
        return self.values.get(member_id, 1.0)

    def set(self, member_id, value):
        self.values[member_id] = value
        self.version += 1


class TestTrustShiftReopensRules:
    def test_settled_rule_reopens_and_resettles(self):
        source = MutableTrust()
        state = MiningState(
            SignificanceTest(THRESHOLDS),
            aggregator=DynamicTrustAggregator(source),
        )
        members = [f"m{i}" for i in range(4)]
        for member in members:
            state.record_answer(
                GENERAL, member, RuleStats(0.6, 0.8), RuleOrigin.SEED
            )
        knowledge = state.knowledge(GENERAL)
        assert knowledge.decision is Decision.SIGNIFICANT
        assert knowledge not in state.unresolved()

        # Every contributor loses trust: the settled decision rests on
        # evidence that no longer carries weight, so the rule reopens.
        for member in members:
            source.set(member, 0.0)
        changed = state.reassess_trust_shift()
        assert changed == 1
        assert knowledge.decision is Decision.UNDECIDED
        assert knowledge.rule in {k.rule for k in state.unresolved()}
        assert state.summary_for(knowledge).n == 0  # no weighted evidence

        # Trust restored (the recovery path): fresh summaries see the
        # full evidence again and the rule re-settles without re-asking.
        for member in members:
            source.set(member, 1.0)
        assert state.reassess_trust_shift() == 1
        assert knowledge.decision is Decision.SIGNIFICANT
        assert state.summary_for(knowledge).n == 4

    def test_partial_purge_then_recovery_gives_fresh_summaries(self):
        source = MutableTrust()
        state = MiningState(
            SignificanceTest(THRESHOLDS),
            aggregator=DynamicTrustAggregator(source),
        )
        for member in ("good1", "good2", "good3"):
            state.record_answer(
                GENERAL, member, RuleStats(0.6, 0.8), RuleOrigin.SEED
            )
        state.record_answer(GENERAL, "shaky", RuleStats(0.2, 0.6), RuleOrigin.SEED)
        knowledge = state.knowledge(GENERAL)
        source.set("shaky", 0.1)
        down = state.summary_for(knowledge)
        source.set("shaky", 1.0)
        up = state.summary_for(knowledge)  # fresh summary, not the cached one
        assert down.n == up.n == 4
        # Down-weighting the dissenting member pulls the mean toward
        # the majority; restoring their trust pulls it back.
        assert down.mean[0] > up.mean[0]


class TestLatentCollusionSession:
    @pytest.fixture
    def colluded(self, folk_population):
        crowd, roles = build_adversarial_crowd(
            folk_population, (("colluder", 0.3),), seed=5
        )
        config = CrowdMinerConfig(
            thresholds=THRESHOLDS, budget=400, seed=6, quarantine=True
        )
        miner = CrowdMiner(crowd, config)
        miner.run()
        return miner, roles

    def test_colluders_quarantined_without_honest_casualties(self, colluded):
        miner, roles = colluded
        assert miner.latent is not None and miner.quality is None
        quarantined = miner.latent.quarantined
        colluders = {mid for mid, role in roles.items() if role == "colluder"}
        assert quarantined, "no member quarantined under a 30% collusion ring"
        # The coherence anchor is computed from each member's own
        # answers, so honest members cannot be framed: every catch
        # must be a colluder.
        assert quarantined <= colluders
        assert len(quarantined) / len(colluders) >= 0.5

    def test_quarantined_evidence_is_purged_and_not_routed(self, colluded):
        miner, _ = colluded
        quarantined = miner.latent.quarantined
        for knowledge in miner.state.rules():
            assert not (set(knowledge.samples.member_ids) & quarantined)
        assert not (set(miner.crowd.available_members()) & quarantined)

    def test_counters_and_histogram_tell_the_story(self, colluded):
        miner, _ = colluded
        snapshot = miner.obs.snapshot()
        assert snapshot.counters.get("quality.reestimates", 0) > 0
        assert snapshot.counters.get("quality.quarantined", 0) == len(
            miner.latent.quarantined
        )
        assert snapshot.counters.get("quality.gold", 0) == 0  # no gold spent
        assert "quality.ability" in snapshot.histograms
