"""Quality control: gold probes, trust, quarantine, and the no-op bar.

Two acceptance criteria from the ISSUE pin here:

- with **no** adversaries, enabling quarantine must leave the miner's
  question selection byte-identical to the plain configuration (the
  quality loop must be free when nothing is wrong);
- with a 30% spammer mix, the loop must actually quarantine spammers
  and purge their evidence from the knowledge base.
"""

import pytest

from repro.core import RuleStats
from repro.errors import ConfigurationError
from repro.estimation import Thresholds
from repro.faults import CompositeTrust, QualityController, build_adversarial_crowd
from repro.miner import CrowdMiner, CrowdMinerConfig
from tests.dispatch.test_equivalence import kb_fingerprint, log_fingerprint

THRESHOLDS = Thresholds(0.10, 0.5)


class TestQualityController:
    def test_clean_member_has_exact_unit_trust(self):
        quality = QualityController()
        quality.record_answer("m1", 0.5)  # well within z_threshold
        quality.record_gold("m1", RuleStats(0.5, 0.6), RuleStats(0.5, 0.7))
        assert quality.trust("m1") == 1.0  # exactly — the fast-path contract
        assert quality.trust("never-seen") == 1.0

    def test_gold_failures_lower_trust(self):
        quality = QualityController(gold_tolerance=0.1)
        for _ in range(3):
            quality.record_gold("m1", RuleStats(0.9, 0.9), RuleStats(0.1, 0.2))
        assert 0.0 < quality.trust("m1") < 0.5
        record = quality.quality_of("m1")
        assert record.gold_failures == 3
        assert record.mean_gold_error == pytest.approx(0.8)

    def test_outliers_lower_trust_past_tolerance(self):
        quality = QualityController(z_threshold=3.5, outlier_tolerance=0.25)
        for _ in range(10):
            assert quality.record_answer("m1", 10.0)
        assert quality.quality_of("m1").outlier_rate == 1.0
        assert quality.trust("m1") < 0.5

    def test_occasional_outlier_forgiven(self):
        quality = QualityController(outlier_tolerance=0.25)
        quality.record_answer("m1", 10.0)  # one outlier...
        for _ in range(7):
            quality.record_answer("m1", 0.1)  # ...among honest answers
        assert quality.trust("m1") == 1.0

    def test_quarantine_needs_min_answers(self):
        quality = QualityController(gold_tolerance=0.1, min_answers=3)
        quality.record_gold("m1", RuleStats(0.9, 0.9), RuleStats(0.1, 0.2))
        assert not quality.should_quarantine("m1")  # only 1 answer scored
        quality.record_gold("m1", RuleStats(0.9, 0.9), RuleStats(0.1, 0.2))
        quality.record_gold("m1", RuleStats(0.9, 0.9), RuleStats(0.1, 0.2))
        assert quality.should_quarantine("m1")
        quality.mark_quarantined("m1")
        assert quality.is_quarantined("m1")
        assert quality.trust("m1") == 0.0
        assert not quality.should_quarantine("m1")  # never twice
        assert quality.quarantined == {"m1"}

    def test_version_moves_only_on_quality_news(self):
        quality = QualityController()
        before = quality.version
        quality.record_answer("m1", 0.1)  # clean: no version bump
        quality.record_gold("m1", RuleStats(0.5, 0.6), RuleStats(0.5, 0.6))
        assert quality.version == before
        quality.record_answer("m1", 99.0)  # outlier: bump
        assert quality.version > before

    def test_version_bumps_on_recovery_too(self):
        # Regression: version used to move only on violations, so a
        # recovering member's *rising* trust left stale low-trust
        # summaries cached in the knowledge base.
        quality = QualityController(gold_tolerance=0.1)
        for _ in range(3):
            quality.record_gold("m1", RuleStats(0.9, 0.9), RuleStats(0.1, 0.2))
        before = quality.version
        trust_before = quality.trust("m1")
        quality.record_gold("m1", RuleStats(0.1, 0.2), RuleStats(0.1, 0.2))
        assert quality.trust("m1") > trust_before  # clean probe dilutes
        assert quality.version > before  # ...and must invalidate caches

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            QualityController(min_answers=0)
        with pytest.raises(Exception):
            QualityController(trust_floor=1.5)


class TestCompositeTrust:
    class _FixedSource:
        def __init__(self, value):
            self.value = value
            self.version = 0

        def trust(self, member_id):
            return self.value

    def test_trust_is_product(self):
        composite = CompositeTrust(
            (self._FixedSource(0.5), self._FixedSource(0.5))
        )
        assert composite.trust("m1") == 0.25

    def test_version_sums_sources(self):
        a, b = self._FixedSource(1.0), self._FixedSource(1.0)
        composite = CompositeTrust((a, b))
        before = composite.version
        a.version += 3
        assert composite.version == before + 3

    def test_versionless_source_forces_invalidation(self):
        source = self._FixedSource(1.0)
        del source.version
        composite = CompositeTrust((source,))
        assert composite.version < composite.version  # strictly increasing


class TestConfigValidation:
    def test_gold_rate_requires_quarantine(self):
        with pytest.raises(ConfigurationError):
            CrowdMinerConfig(thresholds=THRESHOLDS, gold_rate=0.2)

    def test_bad_fractions_rejected(self):
        with pytest.raises(Exception):
            CrowdMinerConfig(
                thresholds=THRESHOLDS, quarantine=True, gold_rate=1.5
            )
        with pytest.raises(Exception):
            CrowdMinerConfig(
                thresholds=THRESHOLDS, quarantine=True, trust_floor=-0.1
            )

    def test_min_answers_positive(self):
        with pytest.raises(Exception):
            CrowdMinerConfig(
                thresholds=THRESHOLDS, quarantine=True, quarantine_min_answers=0
            )


def run_miner(crowd, budget=200, **overrides):
    config = CrowdMinerConfig(
        thresholds=THRESHOLDS, budget=budget, seed=6, **overrides
    )
    miner = CrowdMiner(crowd, config)
    miner.run()
    return miner


class TestCleanCrowdNoOp:
    def test_quarantine_alone_is_byte_identical(self, folk_population):
        # Acceptance bar: 0% adversaries + quarantine enabled must
        # select byte-identically to the plain miner. (gold_rate stays
        # 0 here — probes by design spend budget on re-asks.)
        plain_crowd, _ = build_adversarial_crowd(folk_population, (), seed=5)
        plain = run_miner(plain_crowd)

        guarded_crowd, _ = build_adversarial_crowd(folk_population, (), seed=5)
        guarded = run_miner(guarded_crowd, quarantine=True)

        assert log_fingerprint(guarded) == log_fingerprint(plain)
        assert kb_fingerprint(guarded) == kb_fingerprint(plain)
        assert guarded.latent is not None  # latent model is the default guard
        assert guarded.latent.estimates > 0  # ...and it actually ran
        assert guarded.latent.quarantined == set()


class TestAdversarialSession:
    @pytest.fixture
    def spammed(self, folk_population):
        crowd, roles = build_adversarial_crowd(
            folk_population, (("spammer", 0.3),), seed=5
        )
        miner = run_miner(
            crowd,
            budget=400,
            quarantine=True,
            trust_model="gold",
            gold_rate=0.15,
            trust_floor=0.45,
        )
        return miner, roles

    def test_spammers_get_quarantined(self, spammed):
        miner, roles = spammed
        quarantined = miner.quality.quarantined
        assert quarantined, "no member quarantined in a 30% spammer crowd"
        spammers = {mid for mid, role in roles.items() if role == "spammer"}
        # Gold probes score members against the *crowd aggregate*, and
        # personal truths legitimately scatter around it, so perfect
        # precision is not on offer — but the catch must be mostly
        # spammers, and most spammers must be caught.
        true_positives = len(quarantined & spammers)
        assert true_positives / len(quarantined) >= 0.6
        assert true_positives / len(spammers) >= 0.5

    def test_quarantined_evidence_is_purged(self, spammed):
        miner, _ = spammed
        quarantined = miner.quality.quarantined
        for knowledge in miner.state.rules():
            assert not (set(knowledge.samples.member_ids) & quarantined), (
                f"purged member still has evidence on {knowledge.rule}"
            )

    def test_quarantined_members_not_routed(self, spammed):
        miner, _ = spammed
        assert not (
            set(miner.crowd.available_members()) & miner.quality.quarantined
        )

    def test_garbled_members_get_quarantined_too(self, folk_population):
        # A member who only ever sends unparseable text produces no
        # evidence to score — the malformed strike must still count
        # against them, or they hold a routing slot forever.
        crowd, roles = build_adversarial_crowd(
            folk_population, (("garbled", 0.2),), seed=5
        )
        miner = run_miner(
            crowd, budget=300, quarantine=True, trust_model="gold", gold_rate=0.15
        )
        garbled = {mid for mid, role in roles.items() if role == "garbled"}
        assert garbled <= miner.quality.quarantined

    def test_counters_tell_the_story(self, spammed):
        miner, _ = spammed
        counters = miner.obs.snapshot().counters
        assert counters.get("quality.gold", 0) > 0
        assert counters.get("quality.quarantined", 0) == len(
            miner.quality.quarantined
        )
        assert counters.get("kb.members_purged", 0) >= 0
