"""The fault matrix: every adversary × every transport fault.

The ISSUE's robustness bar: any combination of adversarial answer
behaviour and injected transport/membership faults must (a) complete
without an unhandled exception, (b) leave the dispatcher's books
balanced, and (c) replay byte-identically from its seed tuple.
"""

import pytest

from repro.dispatch import DispatchConfig, Dispatcher, LognormalLatency
from repro.errors import ConfigurationError
from repro.estimation import Thresholds
from repro.faults import (
    FaultInjector,
    FaultPlan,
    build_adversarial_crowd,
    periodic_plan,
)
from repro.miner import CrowdMiner, CrowdMinerConfig
from tests.dispatch.test_equivalence import log_fingerprint

THRESHOLDS = Thresholds(0.10, 0.5)

ADVERSARIES = {
    "none": (),
    "spammer": (("spammer", 0.2),),
    "colluder": (("colluder", 0.2),),
    "drifter": (("drifter", 0.2),),
    "lazy": (("lazy", 0.2),),
    "garbled": (("garbled", 0.2),),
}

FAULTS = {
    "crashes": periodic_plan(horizon=300.0, crash_every=60.0, seed=13),
    "churn": periodic_plan(horizon=300.0, churn_at=120.0, churn_size=3, seed=13),
    "duplicates": periodic_plan(horizon=300.0, duplicate_every=45.0, seed=13),
    "all": periodic_plan(
        horizon=300.0,
        crash_every=90.0,
        churn_at=150.0,
        churn_size=3,
        duplicate_every=60.0,
        seed=13,
    ),
}


def run_faulted(population, mix, plan, *, budget=60, **miner_overrides):
    crowd, _ = build_adversarial_crowd(population, mix, seed=5)
    miner = CrowdMiner(
        crowd,
        CrowdMinerConfig(
            thresholds=THRESHOLDS, budget=budget, seed=6, **miner_overrides
        ),
    )
    dispatcher = Dispatcher(
        miner,
        DispatchConfig(
            window=4,
            latency=LognormalLatency(median=20.0, sigma=0.8),
            timeout=70.0,
            seed=99,
        ),
    )
    FaultInjector(dispatcher, plan).arm()
    result = dispatcher.run()
    return miner, dispatcher, result


def assert_books_balance(stats):
    assert stats.issued == (
        stats.completed
        + stats.stale_discarded
        + stats.malformed
        + stats.rejected
        + stats.timeouts
        + stats.crashed
    ), f"books do not balance: {stats}"
    assert stats.timeouts + stats.crashed == stats.retries + stats.dropped
    assert stats.late_discarded <= stats.timeouts


class TestFaultMatrix:
    @pytest.mark.parametrize("adversary", sorted(ADVERSARIES))
    @pytest.mark.parametrize("fault", sorted(FAULTS))
    def test_completes_with_balanced_books(
        self, folk_population, adversary, fault
    ):
        _, _, result = run_faulted(
            folk_population, ADVERSARIES[adversary], FAULTS[fault]
        )
        assert result.questions_asked > 0
        assert_books_balance(result.dispatch)

    def test_everything_at_once_with_quality_loop(self, folk_population):
        # The kitchen sink: mixed adversaries, every fault class, and
        # the full quality loop defending — still no exceptions, still
        # balanced books, and the injector's counters tell what bit.
        mix = (("spammer", 0.2), ("garbled", 0.1), ("drifter", 0.1))
        miner, dispatcher, result = run_faulted(
            folk_population,
            mix,
            FAULTS["all"],
            budget=120,
            quarantine=True,
            trust_model="gold",
            gold_rate=0.15,
        )
        assert_books_balance(result.dispatch)
        counters = miner.obs.snapshot().counters
        fired = sum(
            counters.get(name, 0)
            for name in (
                "faults.crashes",
                "faults.churned",
                "faults.duplicates",
                "faults.noops",
            )
        )
        assert fired > 0, "no planned fault ever fired"
        assert result.dispatch.malformed > 0  # garbled members got through

    def test_faulted_session_replays_byte_identically(self, folk_population):
        mix = (("spammer", 0.2), ("garbled", 0.1))
        runs = [
            run_faulted(folk_population, mix, FAULTS["all"], budget=80)
            for _ in range(2)
        ]
        (miner_a, _, result_a), (miner_b, _, result_b) = runs
        assert log_fingerprint(miner_a) == log_fingerprint(miner_b)
        assert result_a.dispatch == result_b.dispatch
        assert result_a.significant == result_b.significant

    def test_crashes_actually_crash(self, folk_population):
        _, _, result = run_faulted(folk_population, (), FAULTS["crashes"])
        assert result.dispatch.crashed > 0

    def test_duplicates_discarded_not_booked(self, folk_population):
        _, _, result = run_faulted(folk_population, (), FAULTS["duplicates"])
        assert result.dispatch.duplicates > 0
        assert_books_balance(result.dispatch)  # replays outside the books


class TestFaultPlan:
    def test_empty_plan(self):
        plan = FaultPlan()
        assert plan.is_empty
        assert not FAULTS["all"].is_empty

    def test_negative_times_rejected(self):
        with pytest.raises(ConfigurationError):
            FaultPlan(crashes=(-1.0,))
        with pytest.raises(ConfigurationError):
            FaultPlan(churn_waves=((-5.0, 2),))

    def test_zero_wave_rejected(self):
        with pytest.raises(ConfigurationError):
            FaultPlan(churn_waves=((10.0, 0),))

    def test_periodic_plan_grid(self):
        plan = periodic_plan(horizon=100.0, crash_every=30.0, duplicate_every=50.0)
        assert plan.crashes == (30.0, 60.0, 90.0)
        assert plan.duplicates == (50.0, 100.0)
        assert plan.churn_waves == ()

    def test_periodic_plan_validation(self):
        with pytest.raises(ConfigurationError):
            periodic_plan(horizon=0.0)
        with pytest.raises(ConfigurationError):
            periodic_plan(horizon=10.0, crash_every=-1.0)


class TestInjectorArming:
    def test_double_arm_rejected(self, folk_population):
        crowd, _ = build_adversarial_crowd(folk_population, (), seed=5)
        miner = CrowdMiner(
            crowd, CrowdMinerConfig(thresholds=THRESHOLDS, budget=10, seed=6)
        )
        dispatcher = Dispatcher(miner, DispatchConfig(window=2, seed=99))
        injector = FaultInjector(dispatcher, FaultPlan(crashes=(5.0,)))
        injector.arm()
        with pytest.raises(ConfigurationError):
            injector.arm()
