"""Tests for session analysis."""

import pytest

from repro.core import Rule, RuleStats
from repro.crowd import ExactAnswerModel, SimulatedCrowd
from repro.estimation import Thresholds
from repro.miner import (
    CrowdMiner,
    CrowdMinerConfig,
    MemberLoad,
    QuestionEvent,
    QuestionKind,
    analyze_log,
    analyze_result,
)

R1, R2 = Rule(["a"], ["b"]), Rule(["c"], ["d"])
S = RuleStats(0.2, 0.5)


def closed(i, member, rule):
    return QuestionEvent(i, QuestionKind.CLOSED, member, rule, S)


def open_q(i, member, rule=None):
    stats = S if rule is not None else None
    return QuestionEvent(i, QuestionKind.OPEN, member, rule, stats)


class TestAnalyzeLog:
    def test_empty_log(self):
        analysis = analyze_log([])
        assert analysis.total_questions == 0
        assert analysis.crowd_complexity == 0
        assert analysis.open_fraction == 0.0
        assert analysis.questions_per_unique_rule == 0.0

    def test_counts(self):
        log = [
            closed(0, "u1", R1),
            closed(1, "u2", R1),
            open_q(2, "u1", R2),
            open_q(3, "u2"),
        ]
        analysis = analyze_log(log)
        assert analysis.total_questions == 4
        assert analysis.closed_questions == 2
        assert analysis.open_questions == 2
        assert analysis.empty_open_answers == 1
        assert analysis.unique_rules_asked == 1  # only R1 was *asked*
        assert analysis.crowd_complexity == 2  # R1 + the open question

    def test_discovery_curve_monotone(self):
        log = [closed(0, "u1", R1), open_q(1, "u1", R2), closed(2, "u2", R1)]
        analysis = analyze_log(log)
        assert analysis.discovery_curve == (1, 2, 2)

    def test_rates(self):
        log = [open_q(0, "u1"), open_q(1, "u1", R1)]
        analysis = analyze_log(log)
        assert analysis.open_fraction == 1.0
        assert analysis.empty_open_rate == 0.5

    def test_redundancy_factor(self):
        log = [closed(i, f"u{i}", R1) for i in range(5)]
        analysis = analyze_log(log)
        assert analysis.questions_per_unique_rule == 5.0

    def test_summary_text(self):
        text = analyze_log([closed(0, "u1", R1)]).summary()
        assert "crowd complexity" in text
        assert "member load" in text


class TestMemberLoad:
    def test_equal_load_zero_gini(self):
        load = MemberLoad({"a": 3, "b": 3, "c": 3})
        assert load.gini == pytest.approx(0.0)
        assert load.mean == 3.0
        assert load.max == 3

    def test_skewed_load_positive_gini(self):
        load = MemberLoad({"a": 0, "b": 0, "c": 9})
        assert load.gini > 0.5

    def test_empty(self):
        load = MemberLoad({})
        assert load.gini == 0.0
        assert load.mean == 0.0
        assert load.max == 0


class TestAnalyzeRealSession:
    def test_round_robin_crowd_is_fair(self, folk_population):
        crowd = SimulatedCrowd.from_population(
            folk_population, answer_model=ExactAnswerModel(), seed=3
        )
        miner = CrowdMiner(
            crowd,
            CrowdMinerConfig(thresholds=Thresholds(0.1, 0.5), budget=200, seed=4),
        )
        result = miner.run()
        analysis = analyze_result(result)
        assert analysis.total_questions == result.questions_asked
        assert analysis.member_load.gini < 0.2  # round-robin is fair
        assert analysis.discovery_curve[-1] >= analysis.unique_rules_asked
