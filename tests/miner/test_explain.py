"""Tests for rule-classification explanations."""

import pytest

from repro.core import Rule, RuleStats
from repro.estimation import SignificanceTest, Thresholds
from repro.miner import MiningState, RuleOrigin, explain_report, explain_rule


def make_state():
    test = SignificanceTest(Thresholds(0.2, 0.5), min_samples=3)
    return MiningState(test)


def feed(state, rule, values):
    for i, (s, c) in enumerate(values):
        state.record_answer(rule, f"u{i}", RuleStats(s, c), RuleOrigin.SEED)


class TestExplainRule:
    def test_significant_rule(self):
        state = make_state()
        rule = Rule(["sore throat"], ["ginger tea"])
        feed(state, rule, [(0.5, 0.8)] * 5)
        text = explain_rule(state, rule)
        assert "verdict: significant" in text
        assert "5 member answer" in text
        assert "support 0.500" in text

    def test_insignificant_rule(self):
        state = make_state()
        rule = Rule(["a"], ["b"])
        feed(state, rule, [(0.0, 0.0), (0.01, 0.02), (0.0, 0.01), (0.02, 0.05)])
        text = explain_rule(state, rule)
        assert "verdict: insignificant" in text

    def test_undecided_for_lack_of_samples(self):
        state = make_state()
        rule = Rule(["a"], ["b"])
        feed(state, rule, [(0.5, 0.8)] * 2)
        text = explain_rule(state, rule)
        assert "undecided" in text
        assert "required" in text

    def test_undecided_boundary(self):
        state = make_state()
        rule = Rule(["a"], ["b"])
        feed(state, rule, [(0.18, 0.48), (0.22, 0.52), (0.2, 0.5)])
        text = explain_rule(state, rule)
        assert "undecided" in text

    def test_inferred_insignificance_names_ancestor(self):
        state = make_state()
        general = Rule(["a"], ["b"])
        specific = Rule(["a", "c"], ["b"])
        state.add_rule(specific, RuleOrigin.SEED)
        feed(state, general, [(0.0, 0.0)] * 4)
        text = explain_rule(state, specific)
        assert "inferred without questions" in text
        assert str(general) in text

    def test_origin_is_reported(self):
        state = make_state()
        rule = Rule(["a"], ["b"])
        state.add_rule(rule, RuleOrigin.OPEN_ANSWER)
        assert "volunteered" in explain_rule(state, rule)

    def test_unknown_rule_raises(self):
        with pytest.raises(KeyError):
            explain_rule(make_state(), Rule(["x"], ["y"]))

    def test_no_evidence_phrasing(self):
        state = make_state()
        rule = Rule(["a"], ["b"])
        state.add_rule(rule, RuleOrigin.SEED)
        assert "nothing counted yet" in explain_rule(state, rule)


class TestExplainReport:
    def test_reports_significant_set_by_default(self):
        state = make_state()
        rule = Rule(["a"], ["b"])
        feed(state, rule, [(0.5, 0.8)] * 5)
        text = explain_report(state)
        assert str(rule) in text

    def test_explicit_rule_list(self):
        state = make_state()
        r1, r2 = Rule(["a"], ["b"]), Rule(["c"], ["d"])
        state.add_rule(r1, RuleOrigin.SEED)
        state.add_rule(r2, RuleOrigin.SEED)
        text = explain_report(state, rules=[r1, r2])
        assert text.count("origin:") == 2
