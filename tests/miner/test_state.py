"""Tests for the mining knowledge base."""

import pytest

from repro.core import Rule, RuleStats
from repro.estimation import Decision, SignificanceTest, Thresholds
from repro.miner import MiningState, RuleOrigin


def make_state(**kwargs):
    test = SignificanceTest(Thresholds(0.2, 0.5), min_samples=3)
    return MiningState(test, **kwargs)


def feed(state, rule, values, origin=RuleOrigin.SEED):
    for i, (s, c) in enumerate(values):
        state.record_answer(rule, f"u{i}", RuleStats(s, c), origin)


class TestBookkeeping:
    def test_add_rule_idempotent(self):
        state = make_state()
        rule = Rule(["a"], ["b"])
        k1 = state.add_rule(rule, RuleOrigin.SEED)
        k2 = state.add_rule(rule, RuleOrigin.OPEN_ANSWER)
        assert k1 is k2
        assert k1.origin is RuleOrigin.SEED
        assert len(state) == 1

    def test_prior_promise_keeps_maximum(self):
        state = make_state()
        rule = Rule(["a"], ["b"])
        state.add_rule(rule, RuleOrigin.LATTICE, prior_promise=0.45)
        state.add_rule(rule, RuleOrigin.OPEN_ANSWER, prior_promise=0.7)
        assert state.knowledge(rule).prior_promise == 0.7

    def test_unresolved_initially(self):
        state = make_state()
        state.add_rule(Rule(["a"], ["b"]), RuleOrigin.SEED)
        assert len(state.unresolved()) == 1

    def test_known_rule_set(self):
        state = make_state()
        rule = Rule(["a"], ["b"])
        state.add_rule(rule, RuleOrigin.SEED)
        assert state.known_rule_set() == {rule}


class TestClassification:
    def test_strong_evidence_decides_significant(self):
        state = make_state()
        rule = Rule(["a"], ["b"])
        feed(state, rule, [(0.5, 0.8), (0.55, 0.9), (0.6, 0.85), (0.5, 0.8)])
        assert state.knowledge(rule).decision is Decision.SIGNIFICANT

    def test_weak_evidence_decides_insignificant(self):
        state = make_state()
        rule = Rule(["a"], ["b"])
        feed(state, rule, [(0.0, 0.0), (0.01, 0.02), (0.0, 0.01), (0.02, 0.04)])
        assert state.knowledge(rule).decision is Decision.INSIGNIFICANT

    def test_uncertainty_zero_once_resolved(self):
        state = make_state()
        rule = Rule(["a"], ["b"])
        feed(state, rule, [(0.5, 0.8)] * 5)
        assert state.knowledge(rule).uncertainty == 0.0

    def test_uncertainty_half_with_no_evidence(self):
        state = make_state()
        k = state.add_rule(Rule(["a"], ["b"]), RuleOrigin.SEED)
        assert k.uncertainty == 0.5


class TestLatticePropagation:
    def test_support_dead_general_condemns_specializations(self):
        state = make_state()
        general = Rule(["a"], ["b"])
        specific = Rule(["a", "c"], ["b"])
        state.add_rule(specific, RuleOrigin.SEED)
        feed(state, general, [(0.0, 0.0)] * 4)
        k = state.knowledge(specific)
        assert k.decision is Decision.INSIGNIFICANT
        assert k.inferred
        assert state.inferred_classifications == 1

    def test_new_rule_inherits_insignificance(self):
        state = make_state()
        general = Rule(["a"], ["b"])
        feed(state, general, [(0.0, 0.0)] * 4)
        k = state.add_rule(Rule(["a", "c"], ["b"]), RuleOrigin.LATTICE)
        assert k.decision is Decision.INSIGNIFICANT
        assert k.inferred

    def test_confidence_insignificance_does_not_propagate(self):
        # High support, low confidence: the rule is insignificant but
        # NOT support-dead, so specializations stay open.
        state = make_state()
        general = Rule(["a"], ["b"])
        specific = Rule(["a", "c"], ["b"])
        state.add_rule(specific, RuleOrigin.SEED)
        feed(state, general, [(0.4, 0.41), (0.45, 0.45), (0.4, 0.42), (0.42, 0.44)])
        assert state.knowledge(general).decision is Decision.INSIGNIFICANT
        assert state.knowledge(specific).decision is Decision.UNDECIDED

    def test_pruning_can_be_disabled(self):
        state = make_state(lattice_pruning=False)
        general = Rule(["a"], ["b"])
        specific = Rule(["a", "c"], ["b"])
        state.add_rule(specific, RuleOrigin.SEED)
        feed(state, general, [(0.0, 0.0)] * 4)
        assert state.knowledge(specific).decision is Decision.UNDECIDED

    def test_direct_evidence_overrides_inferred(self):
        state = make_state()
        general = Rule(["a"], ["b"])
        specific = Rule(["a", "c"], ["b"])
        state.add_rule(specific, RuleOrigin.SEED)
        feed(state, general, [(0.0, 0.0)] * 4)
        assert state.knowledge(specific).inferred
        # Strong direct evidence contradicts the inference (odd but
        # possible with noisy crowds) and wins.
        feed(state, specific, [(0.6, 0.9)] * 5)
        k = state.knowledge(specific)
        assert k.decision is Decision.SIGNIFICANT
        assert not k.inferred


class TestReporting:
    def test_decided_mode_only_settled(self):
        state = make_state()
        decided = Rule(["a"], ["b"])
        pending = Rule(["x"], ["y"])
        feed(state, decided, [(0.5, 0.8)] * 4)
        feed(state, pending, [(0.5, 0.8)] * 2)  # below min_samples
        reported = state.significant_rules(mode="decided")
        assert decided in reported
        assert pending not in reported

    def test_point_mode_requires_min_samples(self):
        state = make_state()
        pending = Rule(["x"], ["y"])
        feed(state, pending, [(0.5, 0.8)] * 2)
        assert pending not in state.significant_rules(mode="point")
        # Two more *distinct* members (the feed helper restarts ids).
        state.record_answer(pending, "u10", RuleStats(0.3, 0.55), RuleOrigin.SEED)
        state.record_answer(pending, "u11", RuleStats(0.3, 0.55), RuleOrigin.SEED)
        point = state.significant_rules(mode="point")
        assert pending in point

    def test_reported_stats_are_estimates(self):
        state = make_state()
        rule = Rule(["a"], ["b"])
        feed(state, rule, [(0.4, 0.8), (0.6, 0.9), (0.5, 0.85), (0.5, 0.85)])
        stats = state.significant_rules()[rule]
        assert stats.support == pytest.approx(0.5)

    def test_unknown_mode_rejected(self):
        with pytest.raises(ValueError, match="mode"):
            make_state().significant_rules(mode="wild")
