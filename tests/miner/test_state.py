"""Tests for the mining knowledge base."""

import numpy as np
import pytest

from repro.core import Rule, RuleStats
from repro.estimation import (
    ConsistencyChecker,
    Decision,
    DynamicTrustAggregator,
    SignificanceTest,
    Thresholds,
)
from repro.miner import MiningState, RuleIndex, RuleOrigin


def make_state(**kwargs):
    test = SignificanceTest(Thresholds(0.2, 0.5), min_samples=3)
    return MiningState(test, **kwargs)


def feed(state, rule, values, origin=RuleOrigin.SEED):
    for i, (s, c) in enumerate(values):
        state.record_answer(rule, f"u{i}", RuleStats(s, c), origin)


class TestBookkeeping:
    def test_add_rule_idempotent(self):
        state = make_state()
        rule = Rule(["a"], ["b"])
        k1 = state.add_rule(rule, RuleOrigin.SEED)
        k2 = state.add_rule(rule, RuleOrigin.OPEN_ANSWER)
        assert k1 is k2
        assert k1.origin is RuleOrigin.SEED
        assert len(state) == 1

    def test_prior_promise_keeps_maximum(self):
        state = make_state()
        rule = Rule(["a"], ["b"])
        state.add_rule(rule, RuleOrigin.LATTICE, prior_promise=0.45)
        state.add_rule(rule, RuleOrigin.OPEN_ANSWER, prior_promise=0.7)
        assert state.knowledge(rule).prior_promise == 0.7

    def test_unresolved_initially(self):
        state = make_state()
        state.add_rule(Rule(["a"], ["b"]), RuleOrigin.SEED)
        assert len(state.unresolved()) == 1

    def test_known_rule_set(self):
        state = make_state()
        rule = Rule(["a"], ["b"])
        state.add_rule(rule, RuleOrigin.SEED)
        assert state.known_rule_set() == {rule}


class TestClassification:
    def test_strong_evidence_decides_significant(self):
        state = make_state()
        rule = Rule(["a"], ["b"])
        feed(state, rule, [(0.5, 0.8), (0.55, 0.9), (0.6, 0.85), (0.5, 0.8)])
        assert state.knowledge(rule).decision is Decision.SIGNIFICANT

    def test_weak_evidence_decides_insignificant(self):
        state = make_state()
        rule = Rule(["a"], ["b"])
        feed(state, rule, [(0.0, 0.0), (0.01, 0.02), (0.0, 0.01), (0.02, 0.04)])
        assert state.knowledge(rule).decision is Decision.INSIGNIFICANT

    def test_uncertainty_zero_once_resolved(self):
        state = make_state()
        rule = Rule(["a"], ["b"])
        feed(state, rule, [(0.5, 0.8)] * 5)
        assert state.knowledge(rule).uncertainty == 0.0

    def test_uncertainty_half_with_no_evidence(self):
        state = make_state()
        k = state.add_rule(Rule(["a"], ["b"]), RuleOrigin.SEED)
        assert k.uncertainty == 0.5


class TestLatticePropagation:
    def test_support_dead_general_condemns_specializations(self):
        state = make_state()
        general = Rule(["a"], ["b"])
        specific = Rule(["a", "c"], ["b"])
        state.add_rule(specific, RuleOrigin.SEED)
        feed(state, general, [(0.0, 0.0)] * 4)
        k = state.knowledge(specific)
        assert k.decision is Decision.INSIGNIFICANT
        assert k.inferred
        assert state.inferred_classifications == 1

    def test_new_rule_inherits_insignificance(self):
        state = make_state()
        general = Rule(["a"], ["b"])
        feed(state, general, [(0.0, 0.0)] * 4)
        k = state.add_rule(Rule(["a", "c"], ["b"]), RuleOrigin.LATTICE)
        assert k.decision is Decision.INSIGNIFICANT
        assert k.inferred

    def test_confidence_insignificance_does_not_propagate(self):
        # High support, low confidence: the rule is insignificant but
        # NOT support-dead, so specializations stay open.
        state = make_state()
        general = Rule(["a"], ["b"])
        specific = Rule(["a", "c"], ["b"])
        state.add_rule(specific, RuleOrigin.SEED)
        feed(state, general, [(0.4, 0.41), (0.45, 0.45), (0.4, 0.42), (0.42, 0.44)])
        assert state.knowledge(general).decision is Decision.INSIGNIFICANT
        assert state.knowledge(specific).decision is Decision.UNDECIDED

    def test_pruning_can_be_disabled(self):
        state = make_state(lattice_pruning=False)
        general = Rule(["a"], ["b"])
        specific = Rule(["a", "c"], ["b"])
        state.add_rule(specific, RuleOrigin.SEED)
        feed(state, general, [(0.0, 0.0)] * 4)
        assert state.knowledge(specific).decision is Decision.UNDECIDED

    def test_direct_evidence_overrides_inferred(self):
        state = make_state()
        general = Rule(["a"], ["b"])
        specific = Rule(["a", "c"], ["b"])
        state.add_rule(specific, RuleOrigin.SEED)
        feed(state, general, [(0.0, 0.0)] * 4)
        assert state.knowledge(specific).inferred
        # Strong direct evidence contradicts the inference (odd but
        # possible with noisy crowds) and wins.
        feed(state, specific, [(0.6, 0.9)] * 5)
        k = state.knowledge(specific)
        assert k.decision is Decision.SIGNIFICANT
        assert not k.inferred


class TestReporting:
    def test_decided_mode_only_settled(self):
        state = make_state()
        decided = Rule(["a"], ["b"])
        pending = Rule(["x"], ["y"])
        feed(state, decided, [(0.5, 0.8)] * 4)
        feed(state, pending, [(0.5, 0.8)] * 2)  # below min_samples
        reported = state.significant_rules(mode="decided")
        assert decided in reported
        assert pending not in reported

    def test_point_mode_requires_min_samples(self):
        state = make_state()
        pending = Rule(["x"], ["y"])
        feed(state, pending, [(0.5, 0.8)] * 2)
        assert pending not in state.significant_rules(mode="point")
        # Two more *distinct* members (the feed helper restarts ids).
        state.record_answer(pending, "u10", RuleStats(0.3, 0.55), RuleOrigin.SEED)
        state.record_answer(pending, "u11", RuleStats(0.3, 0.55), RuleOrigin.SEED)
        point = state.significant_rules(mode="point")
        assert pending in point

    def test_reported_stats_are_estimates(self):
        state = make_state()
        rule = Rule(["a"], ["b"])
        feed(state, rule, [(0.4, 0.8), (0.6, 0.9), (0.5, 0.85), (0.5, 0.85)])
        stats = state.significant_rules()[rule]
        assert stats.support == pytest.approx(0.5)

    def test_unknown_mode_rejected(self):
        with pytest.raises(ValueError, match="mode"):
            make_state().significant_rules(mode="wild")


class TestRuleIndex:
    def test_generalization_candidates_by_body_subset(self):
        index = RuleIndex()
        rules = [
            Rule(["a"], ["b"]),
            Rule(["b"], ["a"]),  # same body, different split
            Rule(["a", "c"], ["b"]),
            Rule(["x"], ["y"]),
        ]
        for rule in rules:
            index.add(rule)
        probe = Rule(["a", "c"], ["b"])
        found = set(index.generalization_candidates(probe))
        # Candidates are filtered on bodies only: both splits of {a, b}
        # qualify, the probe itself qualifies, the unrelated rule not.
        assert found == {rules[0], rules[1], rules[2]}

    def test_specialization_candidates_by_body_superset(self):
        index = RuleIndex()
        rules = [
            Rule(["a"], ["b"]),
            Rule(["a", "c"], ["b"]),
            Rule(["a"], ["b", "d"]),
            Rule(["x"], ["y"]),
        ]
        for rule in rules:
            index.add(rule)
        found = set(index.specialization_candidates(Rule(["a"], ["b"])))
        assert found == {rules[0], rules[1], rules[2]}

    def test_missing_item_short_circuits(self):
        index = RuleIndex()
        index.add(Rule(["a"], ["b"]))
        assert list(index.specialization_candidates(Rule(["a"], ["z"]))) == []

    def test_large_body_falls_back_to_postings(self):
        # Bodies past the subset-enumeration limit take the posting-scan
        # path; both paths must agree with a brute-force subset check.
        index = RuleIndex()
        wide = Rule([f"i{k}" for k in range(11)], ["t"])  # body size 12
        narrow = Rule(["i0", "i1"], ["t"])
        other = Rule(["i0"], ["z"])
        for rule in (wide, narrow, other):
            index.add(rule)
        assert set(index.generalization_candidates(wide)) == {wide, narrow}
        assert set(index.specialization_candidates(narrow)) == {wide, narrow}


class TestIndexedLatticeQueries:
    def test_known_generalizations_respect_split_order(self):
        state = make_state()
        target = Rule(["a", "c"], ["b"])
        comparable = Rule(["a"], ["b"])
        incomparable = Rule(["b"], ["a"])  # same body as comparable
        for rule in (target, comparable, incomparable):
            state.add_rule(rule, RuleOrigin.SEED)
        found = {k.rule for k in state.known_generalizations(target)}
        assert found == {comparable}

    def test_known_specializations_exclude_self(self):
        state = make_state()
        general = Rule(["a"], ["b"])
        specific = Rule(["a", "c"], ["b", "d"])
        state.add_rule(general, RuleOrigin.SEED)
        state.add_rule(specific, RuleOrigin.SEED)
        assert {k.rule for k in state.known_specializations(general)} == {specific}
        assert list(state.known_specializations(specific)) == []

    def test_index_matches_brute_force_on_random_rules(self):
        rng = np.random.default_rng(7)
        items = [f"i{k}" for k in range(6)]
        state = make_state()
        rules = []
        while len(rules) < 40:
            size = int(rng.integers(2, 5))
            chosen = list(rng.choice(items, size=size, replace=False))
            cut = int(rng.integers(1, size))
            rule = Rule(chosen[:cut], chosen[cut:])
            if rule not in state:
                rules.append(rule)
                state.add_rule(rule, RuleOrigin.SEED)
        for probe in rules:
            expected_gen = {
                r for r in rules if r != probe and r.generalizes(probe)
            }
            expected_spec = {
                r for r in rules if r != probe and probe.generalizes(r)
            }
            assert {k.rule for k in state.known_generalizations(probe)} == expected_gen
            assert {k.rule for k in state.known_specializations(probe)} == expected_spec


class TestIncrementalViews:
    def test_unresolved_shrinks_as_rules_settle(self):
        state = make_state()
        settled = Rule(["a"], ["b"])
        open_rule = Rule(["x"], ["y"])
        state.add_rule(open_rule, RuleOrigin.SEED)
        feed(state, settled, [(0.5, 0.8)] * 4)
        assert [k.rule for k in state.unresolved()] == [open_rule]

    def test_unresolved_keeps_discovery_order(self):
        state = make_state()
        first = Rule(["a"], ["b"])
        second = Rule(["x"], ["y"])
        third = Rule(["p"], ["q"])
        state.add_rule(first, RuleOrigin.SEED)
        state.add_rule(second, RuleOrigin.SEED)
        state.add_rule(third, RuleOrigin.SEED)
        assert [k.rule for k in state.unresolved()] == [first, second, third]

    def test_reopened_rule_returns_to_discovery_position(self):
        state = make_state()
        first = Rule(["a"], ["b"])
        second = Rule(["x"], ["y"])
        state.add_rule(first, RuleOrigin.SEED)
        state.add_rule(second, RuleOrigin.SEED)
        feed(state, first, [(0.5, 0.8)] * 3)
        assert state.knowledge(first).decision is Decision.SIGNIFICANT
        # Contradicting answers blow up the variance and reopen it.
        state.record_answer(first, "u10", RuleStats(0.0, 0.0), RuleOrigin.SEED)
        state.record_answer(first, "u11", RuleStats(0.0, 0.0), RuleOrigin.SEED)
        assert state.knowledge(first).decision is Decision.UNDECIDED
        assert [k.rule for k in state.unresolved()] == [first, second]

    def test_known_rule_set_is_live(self):
        state = make_state()
        known = state.known_rule_set()
        rule = Rule(["a"], ["b"])
        state.add_rule(rule, RuleOrigin.SEED)
        assert rule in known

    def test_take_newly_significant_drains_once(self):
        state = make_state()
        rule = Rule(["a"], ["b"])
        feed(state, rule, [(0.5, 0.8)] * 4)
        assert state.take_newly_significant() == [rule]
        assert state.take_newly_significant() == []


class TestSummaryCache:
    def test_repeated_reads_hit_the_cache(self):
        state = make_state()
        rule = Rule(["a"], ["b"])
        feed(state, rule, [(0.5, 0.8)] * 3)
        knowledge = state.knowledge(rule)
        misses = state.obs.counter("kb.summary_misses")
        first = state.summary_for(knowledge)
        second = state.summary_for(knowledge)
        assert first is second
        assert state.obs.counter("kb.summary_misses") == misses
        assert state.obs.counter("kb.summary_hits") >= 2

    def test_new_answer_invalidates(self):
        state = make_state()
        rule = Rule(["a"], ["b"])
        feed(state, rule, [(0.4, 0.8)] * 3)
        knowledge = state.knowledge(rule)
        before = state.summary_for(knowledge)
        state.record_answer(rule, "u10", RuleStats(0.8, 0.9), RuleOrigin.SEED)
        after = state.summary_for(knowledge)
        assert after is not before
        assert after.n == 4

    def test_trust_weight_change_invalidates(self):
        # The spammer-screening path: a consistency update must reach
        # cached summaries even when the rule's own samples are untouched.
        checker = ConsistencyChecker()
        test = SignificanceTest(Thresholds(0.2, 0.5), min_samples=3)
        state = MiningState(test, aggregator=DynamicTrustAggregator(checker))
        rule = Rule(["a"], ["b"])
        state.record_answer(rule, "honest", RuleStats(0.2, 0.5), RuleOrigin.SEED)
        state.record_answer(rule, "spammer", RuleStats(0.8, 0.9), RuleOrigin.SEED)
        knowledge = state.knowledge(rule)
        before = state.summary_for(knowledge)
        assert state.summary_for(knowledge) is before  # cached while quiet
        # The spammer violates support monotonicity on another rule;
        # their trust drops, dragging the weighted mean toward "honest".
        checker.record("spammer", Rule(["a"], ["b"]), RuleStats(0.1, 0.3))
        checker.record("spammer", Rule(["a", "c"], ["b"]), RuleStats(0.9, 0.95))
        after = state.summary_for(knowledge)
        assert after is not before
        assert after.mean[0] < before.mean[0]

    def test_versionless_trust_source_disables_caching(self):
        class BareTrust:
            def trust(self, member_id):
                return 1.0

        test = SignificanceTest(Thresholds(0.2, 0.5), min_samples=3)
        state = MiningState(test, aggregator=DynamicTrustAggregator(BareTrust()))
        rule = Rule(["a"], ["b"])
        state.record_answer(rule, "u0", RuleStats(0.4, 0.8), RuleOrigin.SEED)
        knowledge = state.knowledge(rule)
        misses = state.obs.counter("kb.summary_misses")
        state.summary_for(knowledge)
        state.summary_for(knowledge)
        assert state.obs.counter("kb.summary_misses") == misses + 2


class TestPropagationAfterInferredToDirect:
    def test_direct_support_death_propagates_despite_unchanged_decision(self):
        # Regression: propagation used to trigger only on decision
        # *changes*, so a rule moving from inferred insignificance to
        # directly-evidenced, support-dead insignificance (same label,
        # new grounds) never condemned its specializations.
        state = make_state()
        general = Rule(["a"], ["b"])
        middle = Rule(["a", "c"], ["b"])
        state.add_rule(middle, RuleOrigin.SEED)
        # Step 1: the general rule dies on support and condemns middle.
        feed(state, general, [(0.0, 0.0)] * 4)
        assert state.knowledge(middle).inferred
        # Step 2: further answers lift the general rule's support while
        # keeping its confidence dead: still INSIGNIFICANT, but no
        # longer support-dead — it can no longer condemn anyone.
        for i in range(8):
            state.record_answer(
                general, f"g{i}", RuleStats(0.5, 0.5), RuleOrigin.SEED
            )
        assert state.knowledge(general).decision is Decision.INSIGNIFICANT
        # Step 3: a specialization arrives; nothing condemns it now.
        specific = Rule(["a", "c", "d"], ["b"])
        state.add_rule(specific, RuleOrigin.SEED)
        assert state.knowledge(specific).decision is Decision.UNDECIDED
        # Step 4: direct evidence makes middle support-dead. Its
        # decision stays INSIGNIFICANT (inferred → direct), yet the
        # support-death is new knowledge and must propagate.
        for i in range(4):
            state.record_answer(
                middle, f"m{i}", RuleStats(0.0, 0.0), RuleOrigin.SEED
            )
        middle_k = state.knowledge(middle)
        assert middle_k.decision is Decision.INSIGNIFICANT
        assert not middle_k.inferred
        specific_k = state.knowledge(specific)
        assert specific_k.decision is Decision.INSIGNIFICANT
        assert specific_k.inferred
        assert state.inferred_classifications == 2

    def test_propagation_happens_once_per_support_death(self):
        state = make_state()
        general = Rule(["a"], ["b"])
        specific = Rule(["a", "c"], ["b"])
        state.add_rule(specific, RuleOrigin.SEED)
        feed(state, general, [(0.0, 0.0)] * 4)
        assert state.inferred_classifications == 1
        # More confirming answers keep the rule support-dead but must
        # not re-propagate (nothing new to condemn, no double counting).
        for i in range(3):
            state.record_answer(
                general, f"x{i}", RuleStats(0.0, 0.0), RuleOrigin.SEED
            )
        assert state.knowledge(general).propagated
        assert state.inferred_classifications == 1


class TestPriorityView:
    """``best_candidate`` must match the scan it replaces, exactly."""

    @staticmethod
    def naive_best(state, member_id):
        eligible = [
            k for k in state.unresolved()
            if not k.samples.has_answer_from(member_id)
        ]
        if not eligible:
            return None
        return max(eligible, key=lambda k: (state.question_value(k), k.samples.n))

    def test_empty_state_has_no_candidate(self):
        assert make_state().best_candidate("u0") is None

    def test_skips_rules_the_member_answered(self):
        state = make_state()
        answered = Rule(["a"], ["b"])
        fresh = Rule(["c"], ["d"])
        state.record_answer(answered, "u0", RuleStats(0.5, 0.8), RuleOrigin.SEED)
        state.add_rule(fresh, RuleOrigin.SEED)
        assert state.best_candidate("u0").rule == fresh
        # A member who hasn't answered anything sees the higher-value rule.
        assert state.best_candidate("u9").rule == answered

    def test_resolved_rules_never_returned(self):
        state = make_state()
        rule = Rule(["a"], ["b"])
        feed(state, rule, [(0.5, 0.8)] * 5)
        assert state.knowledge(rule).is_resolved
        assert state.best_candidate("u9") is None

    def test_prior_promise_update_reorders(self):
        state = make_state()
        plain = Rule(["a"], ["b"])
        boosted = Rule(["c"], ["d"])
        state.add_rule(plain, RuleOrigin.SEED)
        state.add_rule(boosted, RuleOrigin.SEED)
        assert state.best_candidate("u0").rule == plain  # tie → discovery order
        state.set_prior_promise(boosted, 0.9)
        assert state.best_candidate("u0").rule == boosted

    def test_reopened_rule_becomes_selectable_again(self):
        state = make_state()
        rule = Rule(["a"], ["b"])
        feed(state, rule, [(0.5, 0.8)] * 4)
        assert state.best_candidate("u9") is None
        # Contradicting answers drag the rule back to undecided.
        for i in range(4):
            state.record_answer(rule, f"v{i}", RuleStats(0.15, 0.3), RuleOrigin.SEED)
        assert not state.knowledge(rule).is_resolved
        assert state.best_candidate("u9").rule == rule

    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_matches_naive_scan_on_random_sessions(self, seed):
        rng = np.random.default_rng(seed)
        state = make_state()
        items = [f"i{k}" for k in range(8)]
        members = [f"m{k}" for k in range(6)]
        rules = []
        for step in range(120):
            roll = rng.random()
            if roll < 0.3 or not rules:
                size = int(rng.integers(2, 5))
                body = [items[k] for k in rng.choice(8, size=size, replace=False)]
                cut = int(rng.integers(1, size))
                rule = Rule(body[:cut], body[cut:])
                rules.append(rule)
                state.add_rule(
                    rule, RuleOrigin.OPEN_ANSWER,
                    prior_promise=float(rng.uniform(0.3, 0.9)),
                )
            elif roll < 0.4:
                state.set_prior_promise(
                    rules[int(rng.integers(len(rules)))],
                    float(rng.uniform(0.3, 0.9)),
                )
            else:
                support = float(rng.uniform(0.0, 0.8))
                confidence = float(rng.uniform(support, 1.0))
                state.record_answer(
                    rules[int(rng.integers(len(rules)))],
                    members[int(rng.integers(len(members)))],
                    RuleStats(support, confidence),
                    RuleOrigin.SEED,
                )
            for member_id in members:
                expected = self.naive_best(state, member_id)
                got = state.best_candidate(member_id)
                if expected is None:
                    assert got is None
                else:
                    assert got is expected
