"""Tests for open/closed mix policies."""

import numpy as np
import pytest

from repro.miner import AdaptiveOpenPolicy, FixedRatioPolicy, make_open_policy


def rate(policy, n=2_000, has_closed=True, exhausted=False, seed=0):
    rng = np.random.default_rng(seed)
    hits = sum(
        policy.choose_open(rng, has_closed, exhausted) for _ in range(n)
    )
    return hits / n


class TestFixedRatio:
    def test_respects_ratio(self):
        assert rate(FixedRatioPolicy(0.25)) == pytest.approx(0.25, abs=0.03)

    def test_zero_ratio_never_opens_with_candidates(self):
        assert rate(FixedRatioPolicy(0.0)) == 0.0

    def test_one_ratio_always_opens(self):
        assert rate(FixedRatioPolicy(1.0)) == 1.0

    def test_exhausted_supply_forces_closed(self):
        assert rate(FixedRatioPolicy(0.9), exhausted=True) == 0.0

    def test_fallback_when_no_closed_candidate(self):
        policy = FixedRatioPolicy(0.0, fallback_to_open=True)
        assert rate(policy, has_closed=False) == 1.0

    def test_strict_zero_never_opens(self):
        policy = FixedRatioPolicy(0.0, fallback_to_open=False)
        assert rate(policy, has_closed=False) == 0.0

    def test_invalid_ratio_rejected(self):
        with pytest.raises(Exception):
            FixedRatioPolicy(1.5)


class TestAdaptive:
    def test_starts_discovery_heavy(self):
        policy = AdaptiveOpenPolicy()
        assert rate(policy) == pytest.approx(policy.ceiling, abs=0.03)

    def test_yield_decay_reduces_rate(self):
        policy = AdaptiveOpenPolicy()
        for _ in range(60):
            policy.observe_open_outcome(False)
        assert rate(policy) <= policy.floor + 0.02

    def test_yield_recovers(self):
        policy = AdaptiveOpenPolicy()
        for _ in range(60):
            policy.observe_open_outcome(False)
        for _ in range(60):
            policy.observe_open_outcome(True)
        assert rate(policy) == pytest.approx(policy.ceiling, abs=0.03)

    def test_no_closed_candidate_forces_open(self):
        policy = AdaptiveOpenPolicy()
        assert rate(policy, has_closed=False) == 1.0

    def test_exhausted_forces_closed(self):
        policy = AdaptiveOpenPolicy()
        assert rate(policy, exhausted=True) == 0.0

    def test_floor_above_ceiling_rejected(self):
        with pytest.raises(ValueError):
            AdaptiveOpenPolicy(floor=0.5, ceiling=0.1)


class TestFactory:
    def test_float_builds_fixed(self):
        policy = make_open_policy(0.3)
        assert isinstance(policy, FixedRatioPolicy)
        assert policy.p_open == 0.3

    def test_adaptive_keyword(self):
        assert isinstance(make_open_policy("adaptive"), AdaptiveOpenPolicy)

    def test_unknown_string_rejected(self):
        with pytest.raises(ValueError):
            make_open_policy("mystery")
