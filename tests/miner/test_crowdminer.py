"""Tests for the CrowdMiner main loop."""

import pytest

from repro.core import Rule
from repro.crowd import ExactAnswerModel, SimulatedCrowd
from repro.errors import BudgetExhaustedError
from repro.estimation import Decision, Thresholds
from repro.miner import (
    CrowdMiner,
    CrowdMinerConfig,
    FixedRatioPolicy,
    QuestionKind,
    RuleOrigin,
    mine_crowd,
)


@pytest.fixture
def thresholds():
    return Thresholds(0.10, 0.5)


def make_miner(population, thresholds, **overrides):
    crowd = SimulatedCrowd.from_population(
        population, answer_model=ExactAnswerModel(), seed=5
    )
    config = CrowdMinerConfig(thresholds=thresholds, seed=6, **overrides)
    return CrowdMiner(crowd, config)


class TestStepping:
    def test_each_step_spends_one_question(self, folk_population, thresholds):
        miner = make_miner(folk_population, thresholds, budget=10)
        for expected in range(1, 6):
            event = miner.step()
            assert event is not None
            assert miner.questions_asked == expected
            assert event.index == expected - 1

    def test_budget_enforced(self, folk_population, thresholds):
        miner = make_miner(folk_population, thresholds, budget=3)
        for _ in range(3):
            miner.step()
        with pytest.raises(BudgetExhaustedError):
            miner.step()

    def test_log_matches_steps(self, folk_population, thresholds):
        miner = make_miner(folk_population, thresholds, budget=20)
        events = [miner.step() for _ in range(20)]
        assert miner.log == events


class TestRun:
    def test_run_respects_budget(self, folk_population, thresholds):
        miner = make_miner(folk_population, thresholds, budget=50)
        result = miner.run()
        assert result.questions_asked <= 50
        assert result.closed_questions + result.open_questions == result.questions_asked

    def test_mine_crowd_convenience(self, folk_population, thresholds):
        crowd = SimulatedCrowd.from_population(
            folk_population, answer_model=ExactAnswerModel(), seed=5
        )
        result = mine_crowd(crowd, thresholds, budget=60, seed=6)
        assert result.questions_asked <= 60

    def test_seed_rules_enter_state(self, folk_population, thresholds):
        seed_rule = Rule(["sore throat"], ["ginger tea"])
        miner = make_miner(
            folk_population, thresholds, budget=30, seed_rules=(seed_rule,)
        )
        assert seed_rule in miner.state
        assert miner.state.knowledge(seed_rule).origin is RuleOrigin.SEED

    def test_reproducible_with_same_seeds(self, folk_population, thresholds):
        a = make_miner(folk_population, thresholds, budget=40).run()
        b = make_miner(folk_population, thresholds, budget=40).run()
        assert [(e.kind, e.rule) for e in a.log] == [(e.kind, e.rule) for e in b.log]


class TestOpenDiscovery:
    def test_open_answers_discover_rules(self, folk_population, thresholds):
        miner = make_miner(folk_population, thresholds, budget=60)
        miner.run()
        origins = {k.origin for k in miner.state.rules()}
        assert RuleOrigin.OPEN_ANSWER in origins

    def test_open_evidence_not_counted_by_default(self, folk_population, thresholds):
        miner = make_miner(folk_population, thresholds, budget=30)
        miner.run()
        for event in miner.log:
            if event.kind is QuestionKind.OPEN and event.rule is not None:
                knowledge = miner.state.knowledge(event.rule)
                assert not knowledge.samples.has_answer_from(event.member_id)

    def test_open_evidence_counted_when_enabled(self, folk_population, thresholds):
        miner = make_miner(
            folk_population, thresholds, budget=30, count_open_evidence=True
        )
        miner.run()
        counted = False
        for event in miner.log:
            if event.kind is QuestionKind.OPEN and event.rule is not None:
                knowledge = miner.state.knowledge(event.rule)
                if knowledge.samples.has_answer_from(event.member_id):
                    counted = True
        assert counted

    def test_confirmed_rules_expand(self, folk_population, thresholds):
        miner = make_miner(folk_population, thresholds, budget=400)
        miner.run()
        significant = [
            k for k in miner.state.rules() if k.decision is Decision.SIGNIFICANT
        ]
        if significant:  # at this budget there should be some
            origins = {k.origin for k in miner.state.rules()}
            assert RuleOrigin.LATTICE in origins

    def test_expansion_disabled(self, folk_population, thresholds):
        miner = make_miner(
            folk_population,
            thresholds,
            budget=400,
            expand_generalizations=False,
            expand_splits=False,
        )
        miner.run()
        origins = {k.origin for k in miner.state.rules()}
        assert RuleOrigin.LATTICE not in origins


class TestContextualOpens:
    def test_disabled_by_zero_fraction(self, folk_population, thresholds):
        miner = make_miner(
            folk_population, thresholds, budget=300, contextual_open_fraction=0.0
        )
        miner.run()
        assert miner._pick_context() is None or True  # no crash; fraction 0 → None
        assert miner._pick_context() is None

    def test_context_comes_from_confirmed_rule(self, folk_population, thresholds):
        miner = make_miner(
            folk_population, thresholds, budget=600, contextual_open_fraction=1.0
        )
        miner.run()
        from repro.estimation import Decision

        confirmed = [
            k.rule for k in miner.state.rules()
            if k.decision is Decision.SIGNIFICANT
        ]
        if confirmed:
            context = miner._pick_context()
            assert context is not None
            assert any(context == r.antecedent | r.consequent for r in confirmed)

    def test_contextual_discoveries_are_refinements(self, folk_population, thresholds):
        miner = make_miner(
            folk_population, thresholds, budget=800, contextual_open_fraction=0.8
        )
        result = miner.run()
        # At least one discovered rule must have a multi-item body part
        # matching a confirmed rule's body (a refinement found via a
        # contextual probe) — a weak but real signal the feature works.
        bodies = [len(event.rule.body) for event in result.log
                  if event.kind is QuestionKind.OPEN and event.rule is not None]
        assert bodies  # open questions did discover something


class TestClosedOnly:
    def test_strict_closed_only_without_seeds_stops(self, folk_population, thresholds):
        miner = make_miner(
            folk_population,
            thresholds,
            budget=100,
            open_policy=FixedRatioPolicy(0.0, fallback_to_open=False),
        )
        result = miner.run()
        assert result.questions_asked == 0
        assert result.rules_discovered == 0

    def test_strict_closed_only_with_seeds_settles_them(
        self, folk_population, thresholds
    ):
        seeds = (
            Rule(["sore throat"], ["ginger tea"]),
            Rule(["headache"], ["coffee"]),
        )
        miner = make_miner(
            folk_population,
            thresholds,
            budget=300,
            seed_rules=seeds,
            open_policy=FixedRatioPolicy(0.0, fallback_to_open=False),
            expand_generalizations=False,
            expand_splits=False,
        )
        result = miner.run()
        assert result.questions_asked > 0
        assert result.open_questions == 0
        # Exact answers settle both seeds well within the budget.
        for rule in seeds:
            assert miner.state.knowledge(rule).is_resolved


class TestOpenSupplyExhaustion:
    def test_round_measured_against_available_members(self, folk_population, thresholds):
        # Regression: the dry-open round used to be measured against the
        # *total* member count, departures included, so a mostly-departed
        # crowd kept burning budget on open questions the few remaining
        # members had already answered dry.
        crowd = SimulatedCrowd.from_population(
            folk_population, answer_model=ExactAnswerModel(), patience=2, seed=5
        )
        probe = Rule(["sore throat"], ["ginger tea"])
        for member_id in crowd.member_ids[:-3]:
            for _ in range(2):
                crowd.ask_closed(member_id, probe)
        assert len(crowd.available_members()) == 3
        config = CrowdMinerConfig(thresholds=thresholds, budget=100, seed=6)
        miner = CrowdMiner(crowd, config)
        miner._consecutive_dry_opens = 3
        assert miner.open_supply_exhausted
        miner._consecutive_dry_opens = 2
        assert not miner.open_supply_exhausted

    def test_full_crowd_needs_a_full_round(self, folk_population, thresholds):
        miner = make_miner(folk_population, thresholds, budget=100)
        miner._consecutive_dry_opens = len(folk_population) - 1
        assert not miner.open_supply_exhausted
        miner._consecutive_dry_opens = len(folk_population)
        assert miner.open_supply_exhausted


class TestClosedQuestionRecording:
    def test_closed_answers_keep_discovery_origin(self, folk_population, thresholds):
        # Regression: closed answers used to be recorded under a
        # fabricated SEED origin. Without seed rules, every rule a
        # closed question targets was discovered some other way, and
        # its origin must survive the answer.
        miner = make_miner(folk_population, thresholds, budget=150)
        miner.run()
        closed_rules = {
            e.rule for e in miner.log if e.kind is QuestionKind.CLOSED
        }
        assert closed_rules
        origins = {miner.state.knowledge(r).origin for r in closed_rules}
        assert RuleOrigin.SEED not in origins

    def test_closed_answer_requires_known_rule(self, folk_population, thresholds):
        from repro.core.measures import RuleStats
        from repro.crowd.questions import ClosedAnswer, ClosedQuestion
        from repro.miner import QuestionProposal

        miner = make_miner(folk_population, thresholds, budget=10)
        member_id = miner.crowd.available_members()[0]
        rule = Rule(["never"], ["registered"])
        proposal = QuestionProposal(
            member_id=member_id,
            kind=QuestionKind.CLOSED,
            rule=rule,
            context=None,
            kb_version=miner.state.version,
        )
        answer = ClosedAnswer(
            member_id=member_id,
            question=ClosedQuestion(rule),
            stats=RuleStats(0.2, 0.6),
        )
        with pytest.raises(AssertionError, match="unknown to the state"):
            miner.ingest_answer(proposal, answer)


class TestInstrumentation:
    def test_counters_match_the_log(self, folk_population, thresholds):
        miner = make_miner(folk_population, thresholds, budget=60)
        result = miner.run()
        obs = result.obs
        assert obs is not None
        assert obs.counters["miner.questions"] == result.questions_asked
        assert obs.counters.get("miner.closed", 0) == result.closed_questions
        assert obs.counters.get("miner.open", 0) == result.open_questions
        assert obs.timers["miner.step"].calls == result.questions_asked

    def test_trace_events_fire_per_question(self, folk_population, thresholds):
        from repro.obs import Instrumentation, RecordingSink

        sink = RecordingSink()
        crowd = SimulatedCrowd.from_population(
            folk_population, answer_model=ExactAnswerModel(), seed=5
        )
        config = CrowdMinerConfig(thresholds=thresholds, budget=30, seed=6)
        miner = CrowdMiner(crowd, config, obs=Instrumentation(sink=sink))
        result = miner.run()
        questions = [e for e in sink.events if e.name == "question"]
        assert len(questions) == result.questions_asked
        assert [e.fields["index"] for e in questions] == list(
            range(result.questions_asked)
        )

    def test_summary_mentions_instrumentation(self, folk_population, thresholds):
        miner = make_miner(folk_population, thresholds, budget=20)
        text = miner.run().summary()
        assert "session instrumentation:" in text
        assert "miner.questions" in text


class TestPatience:
    def test_members_leaving_ends_session(self, folk_population, thresholds):
        crowd = SimulatedCrowd.from_population(
            folk_population, answer_model=ExactAnswerModel(), patience=2, seed=5
        )
        config = CrowdMinerConfig(thresholds=thresholds, budget=10_000, seed=6)
        miner = CrowdMiner(crowd, config)
        result = miner.run()
        assert result.questions_asked <= 2 * len(folk_population)
        assert miner.is_done
