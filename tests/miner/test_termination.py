"""Tests for early-termination rules."""

import pytest

from repro.crowd import ExactAnswerModel, SimulatedCrowd
from repro.estimation import Thresholds
from repro.miner import (
    CrowdMiner,
    CrowdMinerConfig,
    all_of,
    any_of,
    discovery_stalled,
    found_k_significant,
    nothing_settleable,
)


def make_miner(population, budget=2_000, **overrides):
    crowd = SimulatedCrowd.from_population(
        population, answer_model=ExactAnswerModel(), seed=5
    )
    config = CrowdMinerConfig(
        thresholds=Thresholds(0.1, 0.5), budget=budget, seed=6, **overrides
    )
    return CrowdMiner(crowd, config)


class TestFoundKSignificant:
    def test_stops_at_k(self, folk_population):
        miner = make_miner(folk_population)
        result = miner.run(stop_when=found_k_significant(3))
        decided = miner.state.significant_rules(mode="decided")
        assert len(decided) >= 3
        # It stopped well before the budget.
        assert result.questions_asked < miner.config.budget

    def test_uses_fewer_questions_than_full_run(self, folk_population):
        early = make_miner(folk_population).run(stop_when=found_k_significant(2))
        full = make_miner(folk_population).run()
        assert early.questions_asked < full.questions_asked

    def test_invalid_k(self):
        with pytest.raises(ValueError):
            found_k_significant(0)


class TestNothingSettleable:
    def test_does_not_fire_early(self, folk_population):
        miner = make_miner(folk_population, budget=100)
        rule = nothing_settleable(check_every=50)
        result = miner.run(stop_when=rule)
        # A fresh folk session has plenty of settleable rules; the
        # session should spend its whole (small) budget.
        assert result.questions_asked == 100

    def test_invalid_interval(self):
        with pytest.raises(ValueError):
            nothing_settleable(check_every=0)


class TestDiscoveryStalled:
    def test_fires_when_discovery_rate_drops(self, folk_population):
        # Demand an unsustainable discovery rate (10 new rules per 60
        # questions): early bursts satisfy it, the verification-heavy
        # middle of the session cannot, so the rule must fire.
        miner = make_miner(folk_population, budget=1_500)
        result = miner.run(stop_when=discovery_stalled(window=60, min_new_rules=10))
        assert result.questions_asked < 1_500

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            discovery_stalled(window=0)


class TestCombinators:
    def test_any_of(self, folk_population):
        miner = make_miner(folk_population)
        stop = any_of(found_k_significant(1), discovery_stalled(window=500))
        result = miner.run(stop_when=stop)
        assert result.questions_asked < miner.config.budget

    def test_all_of_requires_both(self, folk_population):
        never = lambda miner: False
        never.__name__ = "never"
        miner = make_miner(folk_population, budget=120)
        stop = all_of(found_k_significant(1), never)
        result = miner.run(stop_when=stop)
        assert result.questions_asked == 120  # never fired

    def test_empty_combinators_rejected(self):
        with pytest.raises(ValueError):
            any_of()
        with pytest.raises(ValueError):
            all_of()

    def test_names_compose(self):
        stop = any_of(found_k_significant(2), nothing_settleable())
        assert "found_2_significant" in stop.__name__
