"""Tests for mining results."""

from repro.core import Rule, RuleStats
from repro.miner import MiningResult, QuestionEvent, QuestionKind


def make_result(significant):
    return MiningResult(
        significant=significant,
        questions_asked=10,
        closed_questions=7,
        open_questions=3,
        rules_discovered=5,
        inferred_classifications=1,
    )


class TestMaximal:
    def test_generalizations_dropped(self):
        general = Rule(["a"], ["c"])
        specific = Rule(["a", "b"], ["c"])
        result = make_result(
            {general: RuleStats(0.3, 0.6), specific: RuleStats(0.2, 0.55)}
        )
        assert set(result.maximal_significant) == {specific}

    def test_incomparable_all_kept(self):
        r1, r2 = Rule(["a"], ["b"]), Rule(["x"], ["y"])
        result = make_result({r1: RuleStats(0.3, 0.6), r2: RuleStats(0.2, 0.55)})
        assert set(result.maximal_significant) == {r1, r2}

    def test_empty(self):
        assert make_result({}).maximal_significant == {}


class TestTopK:
    def sample(self):
        return make_result(
            {
                Rule(["a"], ["b"]): RuleStats(0.5, 0.6),
                Rule(["c"], ["d"]): RuleStats(0.3, 0.9),
                Rule(["e"], ["f"]): RuleStats(0.1, 0.95),
            }
        )

    def test_by_support(self):
        top = self.sample().top_k(2)
        assert [r for r, _ in top] == [Rule(["a"], ["b"]), Rule(["c"], ["d"])]

    def test_by_confidence(self):
        top = self.sample().top_k(1, by="confidence")
        assert top[0][0] == Rule(["e"], ["f"])

    def test_by_product(self):
        top = self.sample().top_k(1, by="product")
        assert top[0][0] == Rule(["a"], ["b"])  # 0.30 beats 0.27, 0.095

    def test_k_larger_than_set(self):
        assert len(self.sample().top_k(10)) == 3

    def test_k_zero(self):
        assert self.sample().top_k(0) == []

    def test_unknown_ranking(self):
        import pytest

        with pytest.raises(ValueError, match="ranking"):
            self.sample().top_k(1, by="magic")

    def test_negative_k(self):
        import pytest

        with pytest.raises(ValueError, match="non-negative"):
            self.sample().top_k(-1)


class TestSummary:
    def test_summary_mentions_counts(self):
        result = make_result({Rule(["a"], ["b"]): RuleStats(0.3, 0.6)})
        text = result.summary()
        assert "10" in text and "7 closed" in text and "3 open" in text
        assert "{a} -> {b}" in text


class TestQuestionEvent:
    def test_empty_open_detection(self):
        event = QuestionEvent(0, QuestionKind.OPEN, "u1", None, None)
        assert event.is_empty_open

    def test_closed_never_empty_open(self):
        event = QuestionEvent(
            0, QuestionKind.CLOSED, "u1", Rule(["a"], ["b"]), RuleStats(0.2, 0.5)
        )
        assert not event.is_empty_open
