"""Tests for the ground-truth oracle."""

import pytest

from repro.core import Rule, TransactionDB
from repro.estimation import Thresholds
from repro.miner import compute_ground_truth
from repro.synth import Member, Population


def tiny_population(domain_items=("a", "b", "c")):
    from repro.core import ItemDomain

    domain = ItemDomain(list(domain_items))
    # Two members, equal-sized DBs, with a strong a→b habit for both.
    db1 = TransactionDB([["a", "b"]] * 6 + [["a"]] * 2 + [["c"]] * 2)
    db2 = TransactionDB([["a", "b"]] * 4 + [["b"]] * 4 + [["c"]] * 2)
    return Population(
        domain=domain,
        members=(Member("u1", db1), Member("u2", db2)),
    )


class TestExactness:
    def test_strong_rule_found(self):
        pop = tiny_population()
        truth = compute_ground_truth(pop, Thresholds(0.3, 0.6))
        assert Rule(["a"], ["b"]) in truth
        # supp: u1 0.6, u2 0.4 → 0.5. conf: u1 0.75, u2 1.0 → 0.875.
        stats = truth.stats[Rule(["a"], ["b"])]
        assert stats.support == pytest.approx(0.5)
        assert stats.confidence == pytest.approx(0.875)

    def test_reverse_direction_scored_separately(self):
        pop = tiny_population()
        truth = compute_ground_truth(pop, Thresholds(0.3, 0.6))
        # conf(b→a): u1 6/6 = 1.0, u2 4/8 = 0.5 → 0.75.
        assert Rule(["b"], ["a"]) in truth
        assert truth.stats[Rule(["b"], ["a"])].confidence == pytest.approx(0.75)

    def test_support_threshold_excludes(self):
        pop = tiny_population()
        truth = compute_ground_truth(pop, Thresholds(0.6, 0.5))
        assert Rule(["a"], ["b"]) not in truth  # mean support 0.5 < 0.6

    def test_confidence_threshold_excludes(self):
        pop = tiny_population()
        truth = compute_ground_truth(pop, Thresholds(0.3, 0.9))
        assert Rule(["a"], ["b"]) not in truth  # mean conf 0.875 < 0.9

    def test_itemset_rules_optional(self):
        pop = tiny_population()
        without = compute_ground_truth(pop, Thresholds(0.3, 0.3))
        with_them = compute_ground_truth(
            pop, Thresholds(0.3, 0.3), include_itemset_rules=True
        )
        assert not any(r.is_itemset_rule for r in without.significant)
        assert any(r.is_itemset_rule for r in with_them.significant)

    def test_max_body_size_respected(self, folk_population):
        truth = compute_ground_truth(
            folk_population, Thresholds(0.05, 0.3), max_body_size=2
        )
        assert all(len(rule.body) <= 2 for rule in truth.significant)


class TestAgainstBruteForce:
    def test_matches_exhaustive_enumeration(self):
        pop = tiny_population()
        thresholds = Thresholds(0.25, 0.5)
        truth = compute_ground_truth(pop, thresholds)

        # Brute force: every split of every subset of {a, b, c}.
        from itertools import combinations

        items = ["a", "b", "c"]
        expected = set()
        for size in (2, 3):
            for body in combinations(items, size):
                for a_size in range(1, size):
                    for antecedent in combinations(body, a_size):
                        consequent = tuple(i for i in body if i not in antecedent)
                        rule = Rule(antecedent, consequent)
                        s, c = pop.mean_rule_stats(rule)
                        if s >= thresholds.support and c >= thresholds.confidence:
                            expected.add(rule)
        assert truth.significant == expected


class TestUnequalSizes:
    def test_margin_handles_unequal_dbs(self):
        from repro.core import ItemDomain

        domain = ItemDomain(["a", "b"])
        db1 = TransactionDB([["a", "b"]] * 9 + [["a"]])  # 10 rows
        db2 = TransactionDB([["a"]] * 2)  # 2 rows, rule absent
        pop = Population(
            domain=domain, members=(Member("u1", db1), Member("u2", db2))
        )
        assert not pop.equal_sized
        truth = compute_ground_truth(pop, Thresholds(0.4, 0.4))
        # Mean supp of {a,b}: (0.9 + 0) / 2 = 0.45 ≥ 0.4.
        assert Rule(["a"], ["b"]) in truth
