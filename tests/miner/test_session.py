"""Tests for answer caching and threshold replay."""

import pytest

from repro.core import Rule, RuleStats
from repro.crowd import ExactAnswerModel, SimulatedCrowd
from repro.estimation import Thresholds
from repro.miner import (
    AnswerCache,
    CachingCrowd,
    CrowdMiner,
    CrowdMinerConfig,
    reevaluate,
)

R = Rule(["sore throat"], ["ginger tea"])


class TestAnswerCache:
    def test_record_and_lookup(self):
        cache = AnswerCache()
        cache.record_closed("u1", R, RuleStats(0.2, 0.6))
        assert cache.lookup("u1", R) == RuleStats(0.2, 0.6)
        assert cache.lookup("u2", R) is None
        assert len(cache) == 1

    def test_revision_overwrites(self):
        cache = AnswerCache()
        cache.record_closed("u1", R, RuleStats(0.2, 0.6))
        cache.record_closed("u1", R, RuleStats(0.4, 0.8))
        assert cache.lookup("u1", R) == RuleStats(0.4, 0.8)
        assert len(cache) == 1

    def test_open_records_both_tables(self):
        cache = AnswerCache()
        cache.record_open("u1", R, RuleStats(0.3, 0.7))
        assert R in cache.volunteered["u1"]
        assert cache.lookup("u1", R) == RuleStats(0.3, 0.7)

    def test_known_rules(self):
        cache = AnswerCache()
        other = Rule(["a"], ["b"])
        cache.record_closed("u1", R, RuleStats(0.2, 0.6))
        cache.record_open("u2", other, RuleStats(0.3, 0.7))
        assert cache.known_rules() == {R, other}

    def test_answers_for(self):
        cache = AnswerCache()
        cache.record_closed("u1", R, RuleStats(0.2, 0.6))
        cache.record_closed("u2", R, RuleStats(0.4, 0.8))
        cache.record_closed("u1", Rule(["a"], ["b"]), RuleStats(0.1, 0.3))
        assert cache.answers_for(R) == {
            "u1": RuleStats(0.2, 0.6),
            "u2": RuleStats(0.4, 0.8),
        }


class TestCachingCrowd:
    def make(self, population, cache, seed=3):
        inner = SimulatedCrowd.from_population(
            population, answer_model=ExactAnswerModel(), seed=seed
        )
        return inner, CachingCrowd(inner, cache)

    def test_miss_then_hit(self, folk_population):
        cache = AnswerCache()
        inner, crowd = self.make(folk_population, cache)
        first = crowd.ask_closed("u0000", R)
        second = crowd.ask_closed("u0000", R)
        assert first.stats == second.stats
        assert crowd.cache_stats.hits == 1
        assert crowd.cache_stats.misses == 1
        # The hit never reached the inner crowd.
        assert inner.stats.closed_questions == 1

    def test_open_answers_recorded(self, folk_population):
        cache = AnswerCache()
        _, crowd = self.make(folk_population, cache)
        answer = crowd.ask_open("u0000")
        if not answer.is_empty:
            assert answer.rule in cache.volunteered["u0000"]

    def test_cached_volunteered_excluded_on_rerun(self, folk_population):
        cache = AnswerCache()
        _, crowd = self.make(folk_population, cache)
        first = crowd.ask_open("u0000")
        assert not first.is_empty
        # A new session over the same cache: the member must not
        # volunteer the same rule again.
        _, crowd2 = self.make(folk_population, cache, seed=9)
        second = crowd2.ask_open("u0000")
        if not second.is_empty:
            assert second.rule != first.rule

    def test_protocol_passthrough(self, folk_population):
        cache = AnswerCache()
        inner, crowd = self.make(folk_population, cache)
        assert len(crowd) == len(inner)
        assert crowd.member_ids == inner.member_ids
        assert crowd.next_member() == inner.member_ids[0]

    def test_miner_runs_against_caching_crowd(self, folk_population):
        cache = AnswerCache()
        _, crowd = self.make(folk_population, cache)
        miner = CrowdMiner(
            crowd,
            CrowdMinerConfig(thresholds=Thresholds(0.1, 0.5), budget=100, seed=4),
        )
        miner.run()
        assert len(cache) > 0


class TestReevaluate:
    def populate_cache(self, folk_population, budget=600):
        cache = AnswerCache()
        inner = SimulatedCrowd.from_population(
            folk_population, answer_model=ExactAnswerModel(), seed=3
        )
        crowd = CachingCrowd(inner, cache)
        miner = CrowdMiner(
            crowd,
            CrowdMinerConfig(thresholds=Thresholds(0.08, 0.4), budget=budget, seed=4),
        )
        result = miner.run()
        return cache, result

    def test_tighter_thresholds_shrink_result(self, folk_population):
        cache, result = self.populate_cache(folk_population)
        loose = reevaluate(cache, Thresholds(0.08, 0.4))
        tight = reevaluate(cache, Thresholds(0.2, 0.7))
        assert set(tight) <= set(loose)

    def test_replay_consistent_with_session(self, folk_population):
        cache, result = self.populate_cache(folk_population)
        replayed = reevaluate(cache, Thresholds(0.08, 0.4))
        # The replay sees exactly the session's counted evidence plus
        # the volunteered (discovery) answers, so every rule the session
        # reported must replay as significant or better.
        missing = set(result.significant) - set(replayed)
        assert len(missing) <= len(result.significant) * 0.2

    def test_replay_asks_no_questions(self, folk_population):
        cache, _ = self.populate_cache(folk_population)
        before = len(cache)
        reevaluate(cache, Thresholds(0.15, 0.6))
        assert len(cache) == before

    def test_volunteer_bias_exclusion_is_more_conservative(self, folk_population):
        cache, _ = self.populate_cache(folk_population)
        inclusive = reevaluate(cache, Thresholds(0.08, 0.4))
        strict = reevaluate(
            cache, Thresholds(0.08, 0.4), exclude_volunteer_bias=True
        )
        # Dropping upward-biased volunteer answers can only remove
        # evidence, so the strict report is (weakly) smaller.
        assert len(strict) <= len(inclusive)
