"""Tests for question-selection strategies."""

import numpy as np
import pytest

from repro.core import Rule, RuleStats
from repro.estimation import SignificanceTest, Thresholds
from repro.miner import (
    MaxUncertaintyStrategy,
    MiningState,
    RandomStrategy,
    RoundRobinStrategy,
    RuleOrigin,
    make_strategy,
)


@pytest.fixture
def state():
    test = SignificanceTest(Thresholds(0.2, 0.5), min_samples=3)
    return MiningState(test)


def feed(state, rule, member_values, origin=RuleOrigin.SEED):
    for member, (s, c) in member_values:
        state.record_answer(rule, member, RuleStats(s, c), origin)


class TestEligibility:
    def test_resolved_rules_excluded(self, state, rng):
        rule = Rule(["a"], ["b"])
        feed(state, rule, [(f"u{i}", (0.6, 0.9)) for i in range(5)])
        for strategy in (RandomStrategy(), RoundRobinStrategy(), MaxUncertaintyStrategy()):
            assert strategy.select(state, "u99", rng) is None

    def test_member_never_asked_twice(self, state, rng):
        rule = Rule(["a"], ["b"])
        feed(state, rule, [("u1", (0.3, 0.55))])
        strategy = RandomStrategy()
        assert strategy.select(state, "u1", rng) is None
        assert strategy.select(state, "u2", rng) == rule

    def test_empty_state(self, state, rng):
        assert RandomStrategy().select(state, "u1", rng) is None


class TestRoundRobin:
    def test_prefers_fewest_samples(self, state, rng):
        r1, r2 = Rule(["a"], ["b"]), Rule(["x"], ["y"])
        state.add_rule(r2, RuleOrigin.SEED)
        feed(state, r1, [("u1", (0.3, 0.55))])
        assert RoundRobinStrategy().select(state, "u9", rng) == r2


class TestMaxUncertainty:
    def test_prefers_promising_new_rule_over_hopeless(self, state, rng):
        promising = Rule(["a"], ["b"])
        hopeless = Rule(["x"], ["y"])
        feed(state, promising, [("u1", (0.5, 0.8))])
        feed(state, hopeless, [("u1", (0.0, 0.0))])
        assert MaxUncertaintyStrategy().select(state, "u2", rng) == promising

    def test_prior_promise_orders_fresh_rules(self, state, rng):
        volunteered = Rule(["a"], ["b"])
        speculative = Rule(["x"], ["y"])
        state.add_rule(volunteered, RuleOrigin.OPEN_ANSWER, prior_promise=0.7)
        state.add_rule(speculative, RuleOrigin.LATTICE, prior_promise=0.45)
        assert MaxUncertaintyStrategy().select(state, "u1", rng) == volunteered

    def test_boundary_rule_beats_settledish(self, state, rng):
        # Both rules have min_samples; the boundary one is more uncertain.
        boundary = Rule(["a"], ["b"])
        clear = Rule(["x"], ["y"])
        feed(state, boundary, [(f"u{i}", (0.2, 0.5)) for i in range(3)])
        feed(state, clear, [(f"u{i}", (0.45, 0.9)) for i in range(3)])
        kb = state.knowledge(boundary)
        kc = state.knowledge(clear)
        if kc.is_resolved:
            # clear may already be settled; then boundary is the only option
            assert MaxUncertaintyStrategy().select(state, "u9", rng) == boundary
        else:
            assert kb.uncertainty > kc.uncertainty
            assert MaxUncertaintyStrategy().select(state, "u9", rng) == boundary


class TestHorizontal:
    def test_prefers_general_rules_first(self, state, rng):
        from repro.miner import HorizontalStrategy

        general = Rule(["a"], ["b"])
        specific = Rule(["a", "c"], ["b"])
        state.add_rule(specific, RuleOrigin.SEED)
        state.add_rule(general, RuleOrigin.SEED)
        assert HorizontalStrategy().select(state, "u1", rng) == general

    def test_specialization_blocked_until_parent_confirmed(self, state, rng):
        from repro.miner import HorizontalStrategy

        general = Rule(["a"], ["b"])
        specific = Rule(["a", "c"], ["b"])
        state.add_rule(general, RuleOrigin.SEED)
        state.add_rule(specific, RuleOrigin.SEED)
        strategy = HorizontalStrategy()
        # Resolve the general rule for member u1 only; the specific rule
        # stays blocked while the general is undecided.
        feed(state, general, [("u1", (0.3, 0.55))])
        assert strategy.select(state, "u2", rng) == general
        # Confirm the general rule fully → the specific one unblocks.
        feed(state, general, [(f"v{i}", (0.6, 0.9)) for i in range(4)])
        assert strategy.select(state, "u9", rng) == specific

    def test_all_blocked_falls_back(self, state, rng):
        from repro.miner import HorizontalStrategy

        general = Rule(["a"], ["b"])
        specific = Rule(["a", "c"], ["b"])
        state.add_rule(general, RuleOrigin.SEED)
        state.add_rule(specific, RuleOrigin.SEED)
        # u1 already answered the general rule → only the (blocked)
        # specific rule is eligible for u1; fallback must still pick it.
        feed(state, general, [("u1", (0.3, 0.55))])
        assert HorizontalStrategy().select(state, "u1", rng) == specific


class TestRegistry:
    def test_known_names(self):
        from repro.miner import HorizontalStrategy

        assert isinstance(make_strategy("crowdminer"), MaxUncertaintyStrategy)
        assert isinstance(make_strategy("RANDOM"), RandomStrategy)
        assert isinstance(make_strategy("roundrobin"), RoundRobinStrategy)
        assert isinstance(make_strategy("horizontal"), HorizontalStrategy)

    def test_unknown_name(self):
        with pytest.raises(ValueError, match="unknown strategy"):
            make_strategy("quantum")

    def test_strategy_names(self):
        assert MaxUncertaintyStrategy().name == "maxuncertainty"
        assert RandomStrategy().name == "random"
