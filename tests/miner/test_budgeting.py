"""Tests for budget forecasting."""

import pytest

from repro.core import Rule, RuleStats
from repro.errors import EstimationError
from repro.estimation import SignificanceTest, Thresholds
from repro.miner import (
    MiningState,
    RuleOrigin,
    forecast_budget,
    plan_rule,
    required_samples,
)


def make_state():
    test = SignificanceTest(Thresholds(0.2, 0.5), min_samples=3)
    return MiningState(test)


def feed(state, rule, values):
    for i, (s, c) in enumerate(values):
        state.record_answer(rule, f"u{i}", RuleStats(s, c), RuleOrigin.SEED)


class TestRequiredSamples:
    def test_far_from_threshold_needs_few(self):
        assert required_samples(0.3, 0.1, 0.9) <= 2

    def test_close_to_threshold_needs_many(self):
        assert required_samples(0.01, 0.2, 0.9) > 100

    def test_zero_distance_effectively_infinite(self):
        assert required_samples(0.0, 0.2, 0.9) >= 1e8

    def test_zero_std_needs_one(self):
        assert required_samples(0.1, 0.0, 0.9) == 1

    def test_monotone_in_confidence(self):
        assert required_samples(0.1, 0.2, 0.99) >= required_samples(0.1, 0.2, 0.8)

    def test_invalid_inputs(self):
        with pytest.raises(EstimationError):
            required_samples(-0.1, 0.2, 0.9)
        with pytest.raises(EstimationError):
            required_samples(0.1, 0.2, 0.4)


class TestPlanRule:
    def test_unsampled_rule_uses_prior(self):
        state = make_state()
        rule = Rule(["a"], ["b"])
        state.add_rule(rule, RuleOrigin.SEED)
        plan = plan_rule(state, rule, crowd_size=50)
        assert plan.collected == 0
        assert plan.required >= state.test.min_samples

    def test_clear_rule_small_plan(self):
        state = make_state()
        rule = Rule(["a"], ["b"])
        feed(state, rule, [(0.6, 0.9), (0.62, 0.92)])
        plan = plan_rule(state, rule, crowd_size=50)
        assert plan.remaining <= 3
        assert not plan.practically_undecidable

    def test_boundary_rule_large_plan(self):
        state = make_state()
        rule = Rule(["a"], ["b"])
        feed(state, rule, [(0.19, 0.49), (0.21, 0.51)])
        plan = plan_rule(state, rule, crowd_size=10)
        assert plan.required > 10
        assert plan.practically_undecidable

    def test_remaining_never_negative(self):
        state = make_state()
        rule = Rule(["a"], ["b"])
        feed(state, rule, [(0.6, 0.9)] * 2)  # still unresolved (min_samples)
        plan = plan_rule(state, rule, crowd_size=50)
        assert plan.remaining >= 0


class TestForecast:
    def test_covers_all_unresolved(self):
        state = make_state()
        r1, r2 = Rule(["a"], ["b"]), Rule(["c"], ["d"])
        state.add_rule(r1, RuleOrigin.SEED)
        state.add_rule(r2, RuleOrigin.SEED)
        forecast = forecast_budget(state, crowd_size=30)
        assert {p.rule for p in forecast.plans} == {r1, r2}
        assert forecast.remaining_questions > 0

    def test_resolved_rules_excluded(self):
        state = make_state()
        rule = Rule(["a"], ["b"])
        feed(state, rule, [(0.6, 0.9)] * 5)  # decided significant
        forecast = forecast_budget(state, crowd_size=30)
        assert forecast.plans == ()
        assert forecast.remaining_questions == 0

    def test_undecidable_not_counted_in_remaining(self):
        state = make_state()
        boundary = Rule(["a"], ["b"])
        feed(state, boundary, [(0.19, 0.49), (0.21, 0.51)])
        forecast = forecast_budget(state, crowd_size=5)
        assert boundary in forecast.undecidable_rules
        assert forecast.remaining_questions == 0

    def test_summary_text(self):
        state = make_state()
        state.add_rule(Rule(["a"], ["b"]), RuleOrigin.SEED)
        text = forecast_budget(state, crowd_size=30).summary()
        assert "unresolved" in text and "questions" in text

    def test_bad_crowd_size(self):
        with pytest.raises(EstimationError):
            forecast_budget(make_state(), crowd_size=0)
