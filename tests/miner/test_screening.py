"""Tests for in-loop spammer screening and dynamic trust aggregation."""

import numpy as np
import pytest

from repro.core import Rule, RuleStats
from repro.crowd import SimulatedCrowd, SpammerAnswerModel, standard_answer_model
from repro.errors import ConfigurationError
from repro.estimation import (
    DynamicTrustAggregator,
    MeanAggregator,
    RuleSamples,
    Thresholds,
)
from repro.miner import CrowdMiner, CrowdMinerConfig


class FakeTrust:
    def __init__(self, weights):
        self.weights = weights

    def trust(self, member_id):
        return self.weights.get(member_id, 1.0)


class TestDynamicTrustAggregator:
    def test_requires_trust_method(self):
        with pytest.raises(TypeError, match="trust"):
            DynamicTrustAggregator(object())

    def test_distrusted_member_excluded(self):
        store = RuleSamples(Rule(["a"], ["b"]))
        store.add("honest", RuleStats(0.2, 0.5))
        store.add("spammer", RuleStats(1.0, 1.0))
        agg = DynamicTrustAggregator(FakeTrust({"spammer": 0.0}))
        summary = agg.summarize(store)
        assert np.allclose(summary.mean, [0.2, 0.5])

    def test_trust_read_live(self):
        store = RuleSamples(Rule(["a"], ["b"]))
        store.add("u1", RuleStats(0.0, 0.0))
        store.add("u2", RuleStats(1.0, 1.0))
        source = FakeTrust({"u1": 1.0, "u2": 1.0})
        agg = DynamicTrustAggregator(source)
        assert np.allclose(agg.summarize(store).mean, [0.5, 0.5])
        source.weights["u2"] = 0.0  # trust collapses between reads
        assert np.allclose(agg.summarize(store).mean, [0.0, 0.0])


class TestScreeningInMiner:
    def test_config_conflict_rejected(self):
        with pytest.raises(ConfigurationError, match="aggregator"):
            CrowdMinerConfig(
                thresholds=Thresholds(0.1, 0.5),
                screen_spammers=True,
                aggregator=MeanAggregator(),
            )

    def test_screening_flags_spammers(self, folk_population):
        def factory(index):
            if index % 5 == 0:
                return SpammerAnswerModel()
            return standard_answer_model()

        crowd = SimulatedCrowd.from_population(
            folk_population, answer_model_factory=factory, seed=7
        )
        miner = CrowdMiner(
            crowd,
            CrowdMinerConfig(
                thresholds=Thresholds(0.1, 0.5),
                budget=600,
                seed=8,
                screen_spammers=True,
            ),
        )
        miner.run()
        assert miner.consistency is not None
        spammers = {
            m.member_id for i, m in enumerate(folk_population) if i % 5 == 0
        }
        flagged = set(miner.consistency.flagged(threshold=0.8))
        # Most flagged members are actual spammers, and at least some
        # spammers are caught.
        assert flagged & spammers
        honest_flagged = flagged - spammers
        assert len(honest_flagged) <= len(flagged) // 2

    def test_screening_off_by_default(self, folk_crowd):
        miner = CrowdMiner(
            folk_crowd,
            CrowdMinerConfig(thresholds=Thresholds(0.1, 0.5), budget=20, seed=8),
        )
        assert miner.consistency is None
