"""Property tests: the indexed knowledge base equals the naive one.

The inverted index, the cached summaries and the maintained views are
*pure optimizations* — they must never change what the knowledge base
believes. :class:`ReferenceState` below is the obviously-correct
version of the same contract: full scans over every known rule, a fresh
aggregate computed on every read, derived views rebuilt from scratch.
Randomized sessions (fixed seeds) are replayed through both
implementations and every observable — decisions, inferred flags,
inferred-classification counts, the unresolved view, the reported
significant rules — must match at every checkpoint.
"""

from dataclasses import dataclass, field

import numpy as np
import pytest

from repro.core import Rule, RuleStats
from repro.estimation import (
    Assessment,
    Decision,
    MeanAggregator,
    RuleSamples,
    SignificanceTest,
    Thresholds,
)
from repro.miner import MiningState, RuleOrigin


@dataclass
class _Record:
    rule: Rule
    origin: RuleOrigin
    samples: RuleSamples
    decision: Decision = Decision.UNDECIDED
    inferred: bool = False
    last_assessment: Assessment | None = None
    prior_promise: float = 0.5
    propagated: bool = False


class ReferenceState:
    """Straight-line reimplementation of the knowledge-base semantics.

    No index, no caching, no incremental views — every query is a scan,
    every summary a recomputation. Deliberately dumb, thus trustworthy.
    """

    def __init__(self, test, aggregator=None, lattice_pruning=True):
        self.test = test
        self.aggregator = aggregator or MeanAggregator()
        self.lattice_pruning = lattice_pruning
        self.records: dict[Rule, _Record] = {}
        self.inferred_classifications = 0

    def add_rule(self, rule, origin, prior_promise=0.5):
        existing = self.records.get(rule)
        if existing is not None:
            existing.prior_promise = max(existing.prior_promise, prior_promise)
            return existing
        record = _Record(rule, origin, RuleSamples(rule), prior_promise=prior_promise)
        self.records[rule] = record
        if self.lattice_pruning:
            for other in self.records.values():
                if (
                    other.rule != rule
                    and other.rule.generalizes(rule)
                    and other.decision is Decision.INSIGNIFICANT
                    and self._support_dead(other)
                ):
                    record.decision = Decision.INSIGNIFICANT
                    record.inferred = True
                    self.inferred_classifications += 1
                    break
        return record

    def _summary(self, record):
        return self.aggregator.summarize(record.samples)

    def _support_dead(self, record):
        summary = self._summary(record)
        if summary.n < self.test.min_samples:
            return False
        p = self.test.probability_support_exceeds(summary)
        return p <= 1.0 - self.test.decision_confidence

    def _set(self, record, decision, inferred):
        previous = record.decision
        record.decision = decision
        record.inferred = inferred
        if decision is not previous and decision is not Decision.INSIGNIFICANT:
            record.propagated = False

    def record_answer(self, rule, member_id, stats, origin):
        record = self.add_rule(rule, origin)
        record.samples.add(member_id, stats)
        assessment = self.test.assess(self._summary(record))
        record.last_assessment = assessment
        if assessment.decision.is_final or not record.inferred:
            self._set(record, assessment.decision, inferred=False)
        if (
            self.lattice_pruning
            and record.decision is Decision.INSIGNIFICANT
            and not record.inferred
            and not record.propagated
            and self._support_dead(record)
        ):
            record.propagated = True
            for other in self.records.values():
                if (
                    other.rule != rule
                    and rule.generalizes(other.rule)
                    and not other.decision.is_final
                ):
                    self._set(other, Decision.INSIGNIFICANT, inferred=True)
                    self.inferred_classifications += 1
        return record

    def unresolved(self):
        return [r.rule for r in self.records.values() if not r.decision.is_final]

    def significant_rules(self, mode="point"):
        reported = {}
        for record in self.records.values():
            if record.decision is Decision.SIGNIFICANT:
                include = True
            elif mode == "point" and record.decision is Decision.UNDECIDED:
                summary = self._summary(record)
                include = (
                    summary.n >= self.test.min_samples
                    and self.test.point_decision(summary) is Decision.SIGNIFICANT
                )
            else:
                include = False
            if include:
                mean = self._summary(record).mean
                support = float(min(1.0, max(0.0, mean[0])))
                confidence = float(min(1.0, max(0.0, mean[1])))
                reported[record.rule] = RuleStats(support, max(support, confidence))
        return reported


def random_rule(rng, items):
    size = int(rng.integers(2, 5))
    chosen = [items[k] for k in rng.choice(len(items), size=size, replace=False)]
    cut = int(rng.integers(1, size))
    return Rule(chosen[:cut], chosen[cut:])


def random_stats(rng):
    # Mix regimes so sessions actually exercise support-death,
    # confirmation and the undecided middle ground.
    regime = rng.random()
    if regime < 0.35:
        support = float(rng.uniform(0.0, 0.05))
    elif regime < 0.65:
        support = float(rng.uniform(0.35, 0.7))
    else:
        support = float(rng.uniform(0.0, 0.9))
    confidence = float(rng.uniform(support, 1.0))
    return RuleStats(support, confidence)


def replay_session(seed, steps, lattice_pruning):
    rng = np.random.default_rng(seed)
    items = [f"i{k}" for k in range(6)]
    members = [f"m{k}" for k in range(8)]
    origins = list(RuleOrigin)
    test = SignificanceTest(Thresholds(0.2, 0.5), min_samples=3)
    optimized = MiningState(
        SignificanceTest(Thresholds(0.2, 0.5), min_samples=3),
        lattice_pruning=lattice_pruning,
    )
    reference = ReferenceState(test, lattice_pruning=lattice_pruning)
    pool = [random_rule(rng, items) for _ in range(25)]
    for step in range(steps):
        rule = pool[int(rng.integers(len(pool)))]
        origin = origins[int(rng.integers(len(origins)))]
        if rng.random() < 0.25:
            promise = float(rng.uniform(0.3, 0.9))
            optimized.add_rule(rule, origin, prior_promise=promise)
            reference.add_rule(rule, origin, prior_promise=promise)
        else:
            member = members[int(rng.integers(len(members)))]
            stats = random_stats(rng)
            optimized.record_answer(rule, member, stats, origin)
            reference.record_answer(rule, member, stats, origin)
        if step % 25 == 24 or step == steps - 1:
            assert_equivalent(optimized, reference)


def assert_equivalent(optimized, reference):
    assert {k.rule for k in optimized.rules()} == set(reference.records)
    for record in reference.records.values():
        knowledge = optimized.knowledge(record.rule)
        assert knowledge.decision is record.decision, record.rule
        assert knowledge.inferred == record.inferred, record.rule
        assert knowledge.origin is record.origin
        assert knowledge.prior_promise == record.prior_promise
    assert optimized.inferred_classifications == reference.inferred_classifications
    assert [k.rule for k in optimized.unresolved()] == reference.unresolved()
    for mode in ("decided", "point"):
        assert optimized.significant_rules(mode) == reference.significant_rules(mode)


@pytest.mark.parametrize("seed", range(6))
def test_randomized_sessions_match_reference(seed):
    replay_session(seed, steps=150, lattice_pruning=True)


@pytest.mark.parametrize("seed", range(3))
def test_randomized_sessions_match_without_pruning(seed):
    replay_session(seed + 100, steps=100, lattice_pruning=False)
