"""Sharded dispatch equivalence and determinism.

The acceptance bar for the sharded engine, in the style of
``tests/dispatch/test_equivalence.py``:

- one shard, window 1, zero latency and the same seeds must reproduce
  the synchronous session **byte for byte**, on both the object-backed
  and the array-backed crowd;
- more shards must stay deterministic: the same seed replays the same
  transcript, knowledge base and dispatch books, run after run;
- the dispatch books must always balance (every issued question meets
  exactly one fate), however the completion streams interleave.
"""

import pytest

from repro.crowd import ArrayCrowd, ExactAnswerModel, SimulatedCrowd
from repro.dispatch import (
    ConstantLatency,
    DispatchConfig,
    Dispatcher,
    LognormalLatency,
    ShardedDispatcher,
)
from repro.errors import ConfigurationError, InvalidThresholdError
from repro.estimation import Thresholds
from repro.miner import AnswerCache, CachingCrowd, CrowdMiner, CrowdMinerConfig
from repro.synth import ArrayPopulation, folk_remedies_model

from tests.dispatch.test_equivalence import (
    kb_fingerprint,
    log_fingerprint,
    make_miner,
)

THRESHOLDS = Thresholds(0.10, 0.5)


def assert_books_balance(stats):
    assert stats.issued == (
        stats.completed
        + stats.stale_discarded
        + stats.malformed
        + stats.rejected
        + stats.timeouts
        + stats.crashed
    ), stats


@pytest.fixture(scope="module")
def array_population():
    return ArrayPopulation(
        folk_remedies_model(seed=1), n_members=200, transactions_per_member=120, seed=2
    )


def make_array_miner(population, budget=400):
    crowd = ArrayCrowd(population, answer_model=ExactAnswerModel(), seed=5)
    config = CrowdMinerConfig(thresholds=THRESHOLDS, seed=6, budget=budget)
    return CrowdMiner(crowd, config)


class TestSingleShardEquivalence:
    def test_object_crowd_matches_sync_byte_for_byte(self, folk_population):
        sync = make_miner(folk_population)
        sync_result = sync.run()

        mined = make_miner(folk_population)
        result = ShardedDispatcher(
            mined,
            DispatchConfig(window=1, latency=ConstantLatency(0.0), seed=99),
            shards=1,
        ).run()

        assert log_fingerprint(mined) == log_fingerprint(sync)
        assert kb_fingerprint(mined) == kb_fingerprint(sync)
        assert result.significant == sync_result.significant
        assert result.questions_asked == sync_result.questions_asked

    def test_array_crowd_matches_object_sync_byte_for_byte(self, array_population):
        # The object path here runs over ``materialize()``, which shares
        # the array population's columns exactly — so one shard over the
        # array crowd must replay the object-backed sync session.
        materialized = array_population.materialize()
        sync = CrowdMiner(
            SimulatedCrowd.from_population(
                materialized, answer_model=ExactAnswerModel(), seed=5
            ),
            CrowdMinerConfig(thresholds=THRESHOLDS, seed=6, budget=400),
        )
        sync.run()

        mined = make_array_miner(array_population)
        ShardedDispatcher(
            mined,
            DispatchConfig(window=1, latency=ConstantLatency(0.0), seed=99),
            shards=1,
        ).run()

        assert log_fingerprint(mined) == log_fingerprint(sync)
        assert kb_fingerprint(mined) == kb_fingerprint(sync)

    def test_single_shard_books_match_plain_dispatcher_semantics(
        self, folk_population
    ):
        config = DispatchConfig(
            window=4, latency=LognormalLatency(median=60.0, sigma=1.0), seed=99
        )
        plain_miner = make_miner(folk_population)
        plain = Dispatcher(plain_miner, config).run()
        sharded_miner = make_miner(folk_population)
        sharded = ShardedDispatcher(sharded_miner, config, shards=1).run()

        assert_books_balance(plain.dispatch)
        assert_books_balance(sharded.dispatch)
        assert sharded.dispatch.issued == plain.dispatch.issued


class TestMultiShardDeterminism:
    def run_sharded(self, population, shards, window=6):
        miner = make_miner(population)
        result = ShardedDispatcher(
            miner,
            DispatchConfig(
                window=window,
                latency=LognormalLatency(median=60.0, sigma=1.0),
                seed=99,
            ),
            shards=shards,
        ).run()
        return log_fingerprint(miner), kb_fingerprint(miner), result.dispatch

    def test_same_seed_same_transcript(self, folk_population):
        first = self.run_sharded(folk_population, shards=4)
        second = self.run_sharded(folk_population, shards=4)
        assert first[0] == second[0]
        assert first[1] == second[1]
        assert first[2] == second[2]
        assert_books_balance(first[2])

    def test_array_crowd_batched_windows_deterministic(self, array_population):
        def run():
            miner = make_array_miner(array_population)
            result = ShardedDispatcher(
                miner,
                DispatchConfig(window=8, latency=ConstantLatency(10.0), seed=99),
                shards=4,
            ).run()
            return log_fingerprint(miner), kb_fingerprint(miner), result.dispatch

        first, second = run(), run()
        assert first[0] == second[0]
        assert first[1] == second[1]
        assert first[2] == second[2]
        assert_books_balance(first[2])
        assert first[2].in_flight_high_water > 8, (
            "four shards with window 8 should overlap more than one "
            "shard's worth of questions"
        )

    def test_shard_counts_change_schedule_but_stay_balanced(self, folk_population):
        for shards in (2, 3, 4):
            _, _, stats = self.run_sharded(folk_population, shards=shards)
            assert_books_balance(stats)
            assert stats.completed > 0


class TestShardedConfiguration:
    def test_rejects_crowds_without_partitions(self, folk_population):
        crowd = CachingCrowd(
            SimulatedCrowd.from_population(
                folk_population, answer_model=ExactAnswerModel(), seed=5
            ),
            AnswerCache(),
        )
        miner = CrowdMiner(
            crowd, CrowdMinerConfig(thresholds=THRESHOLDS, seed=6, budget=50)
        )
        with pytest.raises(ConfigurationError):
            ShardedDispatcher(miner, DispatchConfig(window=2, seed=99), shards=2)

    def test_rejects_nonpositive_shards(self, folk_population):
        miner = make_miner(folk_population)
        with pytest.raises(InvalidThresholdError):
            ShardedDispatcher(miner, DispatchConfig(window=2, seed=99), shards=0)

    def test_stats_sum_over_shards(self, folk_population):
        miner = make_miner(folk_population)
        dispatcher = ShardedDispatcher(
            miner,
            DispatchConfig(
                window=6, latency=LognormalLatency(median=60.0, sigma=1.0), seed=99
            ),
            shards=4,
        )
        dispatcher.run()
        stats = dispatcher.stats()
        assert stats.issued == sum(shard._issued for shard in dispatcher.shards)
        assert stats.completed == sum(
            shard._completed for shard in dispatcher.shards
        )
        assert stats.makespan == max(
            shard.clock.now for shard in dispatcher.shards
        )
