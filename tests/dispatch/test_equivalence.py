"""Replay equivalence: the dispatcher degenerates to the sync loop.

The acceptance bar for the dispatch engine, in the style of
``tests/miner/test_kb_equivalence.py``:

- window 1 + zero latency + the same seeds must reproduce the
  synchronous session **byte for byte** — same question sequence, same
  answers, same knowledge base, same reported rules;
- window 1 with *any* latency still asks the same questions in the
  same order (one question in flight is FIFO regardless of how long
  each answer takes);
- a window of 8 under lognormal latency must reach the synchronous
  session's final F1 at least 4x faster (simulated makespan) than
  window 1.
"""

import math

import pytest

from repro.crowd import ExactAnswerModel, SimulatedCrowd
from repro.dispatch import (
    ConstantLatency,
    DispatchConfig,
    Dispatcher,
    LognormalLatency,
)
from repro.estimation import Thresholds
from repro.eval import precision_recall
from repro.miner import CrowdMiner, CrowdMinerConfig

THRESHOLDS = Thresholds(0.10, 0.5)
BUDGET = 250


def make_miner(population):
    crowd = SimulatedCrowd.from_population(
        population, answer_model=ExactAnswerModel(), seed=5
    )
    config = CrowdMinerConfig(thresholds=THRESHOLDS, seed=6, budget=BUDGET)
    return CrowdMiner(crowd, config)


def log_fingerprint(miner):
    return [
        (
            event.index,
            event.kind,
            event.member_id,
            None if event.rule is None else str(event.rule),
            None if event.stats is None else event.stats.as_tuple(),
        )
        for event in miner.log
    ]


def kb_fingerprint(miner):
    return {
        str(knowledge.rule): (
            knowledge.decision,
            knowledge.samples.n,
            tuple(sorted(knowledge.samples.member_ids)),
        )
        for knowledge in miner.state.rules()
    }


class TestWindowOneEquivalence:
    def test_zero_latency_matches_sync_byte_for_byte(self, folk_population):
        sync = make_miner(folk_population)
        sync_result = sync.run()

        mined = make_miner(folk_population)
        dispatcher = Dispatcher(
            mined,
            DispatchConfig(window=1, latency=ConstantLatency(0.0), seed=99),
        )
        dispatch_result = dispatcher.run()

        assert log_fingerprint(mined) == log_fingerprint(sync)
        assert kb_fingerprint(mined) == kb_fingerprint(sync)
        assert dispatch_result.significant == sync_result.significant
        assert dispatch_result.questions_asked == sync_result.questions_asked
        stats = dispatch_result.dispatch
        assert stats.makespan == 0.0
        assert stats.timeouts == stats.retries == stats.stale_discarded == 0

    def test_any_latency_still_asks_the_same_questions(self, folk_population):
        # One question in flight is FIFO: however long each answer
        # takes, the next question is chosen only after it lands, so
        # the session transcript cannot depend on the latency values.
        sync = make_miner(folk_population)
        sync.run()

        mined = make_miner(folk_population)
        Dispatcher(
            mined,
            DispatchConfig(
                window=1, latency=LognormalLatency(median=60.0, sigma=1.0), seed=99
            ),
        ).run()

        assert log_fingerprint(mined) == log_fingerprint(sync)
        assert kb_fingerprint(mined) == kb_fingerprint(sync)


def time_to_reach_f1(dispatcher, miner, truth, target, step=120.0):
    """First grid time at which the session's report reaches ``target`` F1."""
    now = 0.0
    while True:
        now += step
        dispatcher.advance_to(now)
        precision, recall = precision_recall(
            miner.state.significant_rules(mode="point"), truth
        )
        f1 = (
            2.0 * precision * recall / (precision + recall)
            if precision + recall
            else 0.0
        )
        if f1 >= target:
            return now
        if dispatcher.is_idle():
            return math.inf


class TestMakespanSpeedup:
    def test_window_eight_reaches_sync_quality_4x_faster(
        self, folk_population, folk_truth
    ):
        sync = make_miner(folk_population)
        sync_result = sync.run()
        precision, recall = precision_recall(
            set(sync_result.significant), folk_truth
        )
        target = (
            2.0 * precision * recall / (precision + recall)
            if precision + recall
            else 0.0
        )
        assert target > 0.0, "sync session found nothing; world too hard"

        latency = LognormalLatency(median=60.0, sigma=1.0)

        slow_miner = make_miner(folk_population)
        slow = Dispatcher(
            slow_miner, DispatchConfig(window=1, latency=latency, seed=99)
        )
        # Window 1 replays the sync transcript (FIFO), so the target is
        # reached exactly, no later than the last answer.
        slow_time = time_to_reach_f1(slow, slow_miner, folk_truth, target)
        assert math.isfinite(slow_time)

        fast_miner = make_miner(folk_population)
        fast = Dispatcher(
            fast_miner, DispatchConfig(window=8, latency=latency, seed=99)
        )
        fast_time = time_to_reach_f1(fast, fast_miner, folk_truth, target)
        assert math.isfinite(fast_time)

        assert fast_time * 4.0 <= slow_time, (
            f"window=8 reached F1 {target:.3f} at {fast_time:.0f}s, "
            f"window=1 at {slow_time:.0f}s - less than the required 4x"
        )
