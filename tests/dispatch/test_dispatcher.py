"""Tests for the asynchronous dispatcher: windows, timeouts, staleness."""

import math

import pytest

from repro.crowd import ExactAnswerModel, SimulatedCrowd, standard_answer_model
from repro.dispatch import (
    ConstantLatency,
    DispatchConfig,
    Dispatcher,
    DroppingLatency,
    LatencyProfile,
    heavy_tail_latency,
)
from repro.errors import ConfigurationError
from repro.estimation import Thresholds
from repro.miner import CrowdMiner, CrowdMinerConfig, QuestionKind

THRESHOLDS = Thresholds(0.10, 0.5)


def make_miner(population, *, budget=120, crowd_seed=5, miner_seed=6, exact=True):
    model = ExactAnswerModel() if exact else standard_answer_model()
    crowd = SimulatedCrowd.from_population(
        population, answer_model=model, seed=crowd_seed
    )
    config = CrowdMinerConfig(thresholds=THRESHOLDS, seed=miner_seed, budget=budget)
    return CrowdMiner(crowd, config)


class TestWindow:
    def test_high_water_reaches_the_window(self, folk_population):
        miner = make_miner(folk_population)
        dispatcher = Dispatcher(
            miner,
            DispatchConfig(window=8, latency=ConstantLatency(30.0), seed=1),
        )
        result = dispatcher.run()
        assert result.dispatch is not None
        assert result.dispatch.in_flight_high_water == 8

    def test_window_capped_by_crowd_size(self, folk_population):
        miner = make_miner(folk_population)  # 25 members
        dispatcher = Dispatcher(
            miner,
            DispatchConfig(window=100, latency=ConstantLatency(30.0), seed=1),
        )
        result = dispatcher.run()
        assert result.dispatch.in_flight_high_water <= len(miner.crowd)

    def test_budget_counts_issues(self, folk_population):
        miner = make_miner(folk_population, budget=50)
        dispatcher = Dispatcher(
            miner, DispatchConfig(window=4, latency=ConstantLatency(10.0), seed=1)
        )
        result = dispatcher.run()
        assert result.dispatch.issued == 50
        assert dispatcher.budget_left == 0

    def test_makespan_advances_with_latency(self, folk_population):
        miner = make_miner(folk_population, budget=40)
        dispatcher = Dispatcher(
            miner, DispatchConfig(window=1, latency=ConstantLatency(60.0), seed=1)
        )
        result = dispatcher.run()
        # One question at a time, each 60 simulated seconds.
        assert result.dispatch.makespan == pytest.approx(60.0 * 40)


class TestTimeoutsAndRetries:
    def test_slow_answers_time_out_and_retry(self, folk_population):
        miner = make_miner(folk_population, budget=30)
        # Every answer takes 1000s against a 100s timeout: all time out,
        # and retries (with backoff 2x) eventually get dropped too.
        dispatcher = Dispatcher(
            miner,
            DispatchConfig(
                window=2,
                latency=ConstantLatency(1000.0),
                timeout=100.0,
                max_retries=1,
                backoff=2.0,
                seed=1,
            ),
        )
        result = dispatcher.run()
        stats = result.dispatch
        assert stats.timeouts > 0
        assert stats.retries > 0
        assert stats.late_discarded == stats.timeouts
        assert stats.dropped > 0
        assert stats.completed == 0  # nothing ever landed in time
        assert miner.questions_asked == 0

    def test_backoff_lets_a_retry_succeed(self, folk_population):
        miner = make_miner(folk_population, budget=10)
        # 150s answers, 100s base timeout, backoff 2 => the retry waits
        # 200s and the (reissued) answer lands.
        dispatcher = Dispatcher(
            miner,
            DispatchConfig(
                window=1,
                latency=ConstantLatency(150.0),
                timeout=100.0,
                max_retries=2,
                backoff=2.0,
                seed=1,
            ),
        )
        result = dispatcher.run()
        stats = result.dispatch
        assert stats.timeouts > 0
        assert stats.completed > 0
        assert stats.dropped == 0

    def test_retry_reassigns_to_a_different_member(self, folk_population):
        miner = make_miner(folk_population, budget=4)
        slow_then_fast = LatencyProfile(default=ConstantLatency(1000.0))
        dispatcher = Dispatcher(
            miner,
            DispatchConfig(
                window=1,
                latency=slow_then_fast,
                timeout=100.0,
                max_retries=1,
                seed=1,
            ),
        )
        issued_members = []
        original_issue = dispatcher._issue

        def spy(proposal, attempt):
            issued_members.append((proposal.member_id, attempt))
            original_issue(proposal, attempt)

        dispatcher._issue = spy
        dispatcher.run()
        originals = [m for m, attempt in issued_members if attempt == 0]
        retries = [m for m, attempt in issued_members if attempt > 0]
        assert retries
        # Window 1 strictly alternates original/retry, so pairing the
        # two lists matches each retry with its timed-out original.
        for original, retry in zip(originals, retries):
            assert retry != original

    def test_answer_landing_exactly_at_timeout_counts(self, folk_population):
        miner = make_miner(folk_population, budget=5)
        dispatcher = Dispatcher(
            miner,
            DispatchConfig(
                window=1, latency=ConstantLatency(100.0), timeout=100.0, seed=1
            ),
        )
        result = dispatcher.run()
        # Arrival is scheduled before the timeout at the same instant.
        assert result.dispatch.timeouts == 0
        assert result.dispatch.completed == 5


class TestDropout:
    def test_lost_answers_need_a_timeout(self, folk_population):
        miner = make_miner(folk_population, budget=10)
        dispatcher = Dispatcher(
            miner,
            DispatchConfig(
                window=1,
                latency=DroppingLatency(ConstantLatency(10.0), p_drop=1.0),
                timeout=math.inf,
                seed=1,
            ),
        )
        with pytest.raises(ConfigurationError, match="timeout"):
            dispatcher.run()

    def test_dropout_recovered_by_timeout(self, folk_population):
        miner = make_miner(folk_population, budget=20)
        dispatcher = Dispatcher(
            miner,
            DispatchConfig(
                window=2,
                latency=DroppingLatency(ConstantLatency(10.0), p_drop=0.5),
                timeout=60.0,
                max_retries=3,
                seed=1,
            ),
        )
        result = dispatcher.run()
        stats = result.dispatch
        assert stats.completed > 0
        assert stats.timeouts > 0
        # Lost answers are not "late": nothing was travelling anymore.
        assert stats.late_discarded < stats.timeouts


class TestEvidenceIntegrity:
    """Stale answers must never be double-counted in the knowledge base."""

    def test_no_member_counted_twice_per_rule(self, folk_population):
        miner = make_miner(folk_population, budget=300, exact=False)
        dispatcher = Dispatcher(
            miner,
            DispatchConfig(
                window=12,
                latency=heavy_tail_latency(median=60.0),
                timeout=1800.0,
                max_retries=2,
                seed=7,
            ),
        )
        dispatcher.run()
        closed_pairs = [
            (event.rule, event.member_id)
            for event in miner.log
            if event.kind is QuestionKind.CLOSED
        ]
        assert len(closed_pairs) == len(set(closed_pairs))

    def test_evidence_count_matches_ingested_closed_answers(self, folk_population):
        # The regression the version stamp exists for: every sample in
        # the knowledge base corresponds to exactly one ingested closed
        # event (plus none from open answers under the default config) —
        # stale arrivals, late arrivals and drops contribute nothing.
        miner = make_miner(folk_population, budget=300, exact=False)
        dispatcher = Dispatcher(
            miner,
            DispatchConfig(
                window=12,
                latency=heavy_tail_latency(median=60.0),
                timeout=1800.0,
                max_retries=2,
                seed=7,
            ),
        )
        result = dispatcher.run()
        total_samples = sum(
            knowledge.samples.n for knowledge in miner.state.rules()
        )
        closed_ingested = sum(
            1 for event in miner.log if event.kind is QuestionKind.CLOSED
        )
        assert total_samples == closed_ingested
        stats = result.dispatch
        # The books balance: every issue either completed, went stale,
        # or timed out into a retry or a drop.
        assert stats.issued == stats.completed + stats.stale_discarded + stats.timeouts
        assert stats.timeouts == stats.retries + stats.dropped

    def test_stale_discards_counted_in_obs(self, folk_population):
        miner = make_miner(folk_population, budget=300, exact=False)
        dispatcher = Dispatcher(
            miner,
            DispatchConfig(
                window=16, latency=heavy_tail_latency(median=60.0),
                timeout=3600.0, seed=3,
            ),
        )
        result = dispatcher.run()
        stats = result.dispatch
        assert stats.stale_discarded == result.obs.counters.get("dispatch.stale", 0)
        assert stats.issued == result.obs.counters.get("dispatch.issued", 0)


class TestReporting:
    def test_summary_reports_dispatch_counters(self, folk_population):
        miner = make_miner(folk_population, budget=40)
        dispatcher = Dispatcher(
            miner, DispatchConfig(window=4, latency=ConstantLatency(30.0), seed=1)
        )
        summary = dispatcher.run().summary()
        assert "in-flight high water 4" in summary
        assert "makespan" in summary

    def test_sync_summary_has_fallback_line(self, folk_population):
        miner = make_miner(folk_population, budget=20)
        result = miner.run()
        assert "synchronous session (no dispatcher attached)" in result.summary()

    def test_config_validation(self):
        with pytest.raises(Exception):
            DispatchConfig(window=0)
        with pytest.raises(ConfigurationError):
            DispatchConfig(timeout=0.0)
        with pytest.raises(ConfigurationError):
            DispatchConfig(max_retries=-1)
        with pytest.raises(ConfigurationError):
            DispatchConfig(backoff=0.5)

    def test_advance_to_runs_on_a_grid(self, folk_population):
        miner = make_miner(folk_population, budget=40)
        dispatcher = Dispatcher(
            miner, DispatchConfig(window=2, latency=ConstantLatency(50.0), seed=1)
        )
        dispatcher.advance_to(100.0)
        mid_questions = miner.questions_asked
        assert 0 < mid_questions < 40
        assert dispatcher.clock.now == 100.0
        dispatcher.advance_to(10_000.0)
        assert miner.questions_asked == 40
