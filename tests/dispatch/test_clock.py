"""Tests for the discrete-event simulation clock."""

import math

import pytest

from repro.dispatch import EventClock


class TestOrdering:
    def test_events_fire_in_time_order(self):
        clock = EventClock()
        fired = []
        clock.schedule(3.0, lambda: fired.append("c"))
        clock.schedule(1.0, lambda: fired.append("a"))
        clock.schedule(2.0, lambda: fired.append("b"))
        while clock.pop():
            pass
        assert fired == ["a", "b", "c"]
        assert clock.now == 3.0

    def test_simultaneous_events_fire_in_schedule_order(self):
        clock = EventClock()
        fired = []
        for tag in "abcde":
            clock.schedule(5.0, lambda tag=tag: fired.append(tag))
        while clock.pop():
            pass
        assert fired == list("abcde")

    def test_pop_advances_time_to_the_event(self):
        clock = EventClock()
        clock.schedule(7.5, lambda: None)
        assert clock.now == 0.0
        assert clock.pop()
        assert clock.now == 7.5

    def test_pop_on_empty_clock_returns_false_and_keeps_time(self):
        clock = EventClock()
        clock.schedule(1.0, lambda: None)
        clock.pop()
        assert not clock.pop()
        assert clock.now == 1.0


class TestCancellation:
    def test_cancelled_events_are_skipped(self):
        clock = EventClock()
        fired = []
        doomed = clock.schedule(1.0, lambda: fired.append("doomed"))
        clock.schedule(2.0, lambda: fired.append("kept"))
        doomed.cancel()
        while clock.pop():
            pass
        assert fired == ["kept"]

    def test_len_counts_only_live_events(self):
        clock = EventClock()
        keep = clock.schedule(1.0, lambda: None)
        drop = clock.schedule(2.0, lambda: None)
        assert len(clock) == 2
        drop.cancel()
        assert len(clock) == 1
        assert keep.time == 1.0

    def test_peek_time_skips_cancelled(self):
        clock = EventClock()
        first = clock.schedule(1.0, lambda: None)
        clock.schedule(2.0, lambda: None)
        first.cancel()
        assert clock.peek_time() == 2.0

    def test_peek_time_on_idle_clock(self):
        assert EventClock().peek_time() is None


class TestRunUntil:
    def test_fires_events_up_to_and_including_the_horizon(self):
        clock = EventClock()
        fired = []
        for t in (1.0, 2.0, 3.0):
            clock.schedule(t, lambda t=t: fired.append(t))
        assert clock.run_until(2.0) == 2
        assert fired == [1.0, 2.0]
        assert clock.now == 2.0

    def test_lands_exactly_on_the_horizon_even_with_no_events(self):
        clock = EventClock()
        clock.run_until(42.0)
        assert clock.now == 42.0

    def test_cannot_run_backwards(self):
        clock = EventClock()
        clock.run_until(10.0)
        with pytest.raises(ValueError, match="backwards"):
            clock.run_until(5.0)

    def test_events_scheduled_while_running_still_fire(self):
        # An arrival that schedules a follow-up (refill) within the
        # horizon must see that follow-up fire in the same run.
        clock = EventClock()
        fired = []

        def chain():
            fired.append("first")
            clock.schedule(1.0, lambda: fired.append("second"))

        clock.schedule(1.0, chain)
        clock.run_until(3.0)
        assert fired == ["first", "second"]


class TestValidation:
    def test_negative_delay_rejected(self):
        with pytest.raises(ValueError, match="non-negative"):
            EventClock().schedule(-1.0, lambda: None)

    def test_nan_rejected(self):
        with pytest.raises(ValueError):
            EventClock().schedule(math.nan, lambda: None)

    def test_infinite_time_rejected(self):
        # A lost answer has no arrival; callers skip scheduling it
        # rather than parking an event at infinity.
        with pytest.raises(ValueError, match="infinity"):
            EventClock().schedule(math.inf, lambda: None)

    def test_schedule_at_before_now_rejected(self):
        clock = EventClock()
        clock.run_until(5.0)
        with pytest.raises(ValueError, match="already at"):
            clock.schedule_at(4.0, lambda: None)
