"""Tests for the latency model catalogue."""

import math

import numpy as np
import pytest

from repro.dispatch import (
    ConstantLatency,
    DroppingLatency,
    LatencyProfile,
    LognormalLatency,
    MixtureLatency,
    ParetoLatency,
    heavy_tail_latency,
    parse_latency,
)
from repro.errors import ConfigurationError


def rng(seed=0):
    return np.random.default_rng(seed)


class TestConstant:
    def test_returns_the_delay(self):
        assert ConstantLatency(12.5).sample(rng()) == 12.5

    def test_consumes_no_randomness(self):
        # Part of the window-1 equivalence guarantee: a zero-latency
        # dispatcher run leaves the latency stream untouched.
        generator = rng(3)
        before = generator.bit_generator.state
        ConstantLatency(0.0).sample(generator)
        assert generator.bit_generator.state == before

    def test_rejects_negative(self):
        with pytest.raises(Exception):
            ConstantLatency(-1.0)


class TestDistributions:
    def test_lognormal_positive_and_roughly_median(self):
        model = LognormalLatency(median=60.0, sigma=1.0)
        generator = rng(7)
        draws = [model.sample(generator) for _ in range(2000)]
        assert all(d > 0 for d in draws)
        assert 40.0 < float(np.median(draws)) < 90.0

    def test_pareto_never_below_scale(self):
        model = ParetoLatency(scale=30.0, alpha=1.5)
        generator = rng(8)
        assert all(model.sample(generator) >= 30.0 for _ in range(500))

    def test_mixture_validation(self):
        with pytest.raises(ConfigurationError):
            MixtureLatency([], [])
        with pytest.raises(ConfigurationError):
            MixtureLatency([ConstantLatency(1.0)], [1.0, 2.0])
        with pytest.raises(ConfigurationError):
            MixtureLatency([ConstantLatency(1.0)], [-1.0])

    def test_mixture_draws_from_components(self):
        model = MixtureLatency(
            [ConstantLatency(1.0), ConstantLatency(100.0)], [0.5, 0.5]
        )
        generator = rng(9)
        draws = {model.sample(generator) for _ in range(200)}
        assert draws == {1.0, 100.0}

    def test_dropping_extremes(self):
        base = ConstantLatency(5.0)
        assert DroppingLatency(base, 1.0).sample(rng()) == math.inf
        assert DroppingLatency(base, 0.0).sample(rng()) == 5.0

    def test_heavy_tail_is_a_mixture(self):
        model = heavy_tail_latency(median=60.0)
        assert isinstance(model, MixtureLatency)
        generator = rng(10)
        assert all(model.sample(generator) > 0 for _ in range(200))

    def test_determinism_per_seed(self):
        model = heavy_tail_latency(median=60.0)
        g1, g2 = rng(4), rng(4)
        assert [model.sample(g1) for _ in range(50)] == [
            model.sample(g2) for _ in range(50)
        ]


class TestProfile:
    def test_default_and_overrides(self):
        slow = ConstantLatency(100.0)
        fast = ConstantLatency(1.0)
        profile = LatencyProfile(default=fast, per_member={"u1": slow})
        assert profile.model_for("u0") is fast
        assert profile.model_for("u1") is slow

    def test_from_factory(self):
        profile = LatencyProfile.from_factory(
            ["a", "b", "c"],
            lambda index, member_id: ConstantLatency(float(index)),
        )
        assert profile.model_for("c").delay == 2.0
        assert profile.model_for("unknown").delay == 0.0


class TestParse:
    def test_constant_specs(self):
        assert parse_latency("0").delay == 0.0
        assert parse_latency("45").delay == 45.0
        assert parse_latency("const:30").delay == 30.0

    def test_distribution_specs(self):
        model = parse_latency("lognormal:60:1.0")
        assert isinstance(model, LognormalLatency)
        assert model.median == 60.0
        model = parse_latency("pareto:30:1.5")
        assert isinstance(model, ParetoLatency)
        assert model.alpha == 1.5
        assert isinstance(parse_latency("heavytail:60:0.8:1.3"), MixtureLatency)

    def test_drop_suffix_wraps(self):
        model = parse_latency("lognormal:30:0.8:drop=0.05")
        assert isinstance(model, DroppingLatency)
        assert model.p_drop == 0.05
        assert isinstance(model.base, LognormalLatency)

    @pytest.mark.parametrize(
        "spec", ["", "wibble:1", "lognormal:60", "pareto", "drop=0.5", "const:x"]
    )
    def test_malformed_specs_rejected(self, spec):
        with pytest.raises(ConfigurationError):
            parse_latency(spec)
