"""Dispatcher bookkeeping under crashes: every question meets one fate.

The audit half of the robustness ISSUE: ``issued`` must always equal
``completed + stale_discarded + malformed + rejected + timeouts +
crashed``, and every lost question (timeout or crash) must be either
retried or dropped — under any injected failure pattern, at any
timeout setting.
"""

import pytest

from repro.dispatch import DispatchConfig, Dispatcher, LognormalLatency
from repro.estimation import Thresholds
from repro.faults import FaultInjector, FaultPlan
from repro.miner import CrowdMiner, CrowdMinerConfig

THRESHOLDS = Thresholds(0.10, 0.5)


def run_with_plan(population, plan, *, timeout=70.0, budget=80, max_retries=2):
    from repro.crowd import SimulatedCrowd, standard_answer_model

    crowd = SimulatedCrowd.from_population(
        population, answer_model=standard_answer_model(), seed=5
    )
    miner = CrowdMiner(
        crowd, CrowdMinerConfig(thresholds=THRESHOLDS, budget=budget, seed=6)
    )
    dispatcher = Dispatcher(
        miner,
        DispatchConfig(
            window=4,
            latency=LognormalLatency(median=25.0, sigma=1.0),
            timeout=timeout,
            max_retries=max_retries,
            seed=99,
        ),
    )
    if not plan.is_empty:
        FaultInjector(dispatcher, plan).arm()
    return dispatcher.run()


def assert_books_balance(stats):
    __tracebackhide__ = True
    assert stats.issued == (
        stats.completed
        + stats.stale_discarded
        + stats.malformed
        + stats.rejected
        + stats.timeouts
        + stats.crashed
    ), f"issued does not reconcile: {stats}"
    assert stats.timeouts + stats.crashed == stats.retries + stats.dropped, (
        f"lost questions neither retried nor dropped: {stats}"
    )


CRASH_PLANS = {
    "no_faults": FaultPlan(),
    "single_crash": FaultPlan(crashes=(60.0,), seed=17),
    "crash_storm": FaultPlan(crashes=tuple(float(t) for t in range(40, 400, 40)), seed=17),
    "crash_and_churn": FaultPlan(
        crashes=(50.0, 200.0), churn_waves=((120.0, 4),), seed=17
    ),
    "everything": FaultPlan(
        crashes=(50.0, 150.0, 250.0),
        churn_waves=((100.0, 3), (300.0, 2)),
        duplicates=(75.0, 175.0, 275.0),
        seed=17,
    ),
}


class TestBooksBalance:
    @pytest.mark.parametrize("plan_name", sorted(CRASH_PLANS))
    def test_books_balance_under_faults(self, folk_population, plan_name):
        result = run_with_plan(folk_population, CRASH_PLANS[plan_name])
        assert_books_balance(result.dispatch)

    @pytest.mark.parametrize("timeout", [15.0, 70.0, 1e9])
    def test_books_balance_across_timeout_regimes(self, folk_population, timeout):
        # Tight timeouts race crashes for the same in-flight entries;
        # both paths must book the loss exactly once.
        result = run_with_plan(
            folk_population, CRASH_PLANS["everything"], timeout=timeout
        )
        assert_books_balance(result.dispatch)

    def test_crashes_are_booked_and_recovered(self, folk_population):
        stats = run_with_plan(
            folk_population, CRASH_PLANS["crash_storm"]
        ).dispatch
        assert stats.crashed > 0
        # A crashed question re-enters the pipeline like a timeout:
        # retried while retries remain, dropped after.
        assert stats.retries + stats.dropped >= stats.crashed

    def test_zero_retries_drops_every_loss(self, folk_population):
        stats = run_with_plan(
            folk_population, CRASH_PLANS["crash_storm"], max_retries=0
        ).dispatch
        assert stats.retries == 0
        assert stats.dropped == stats.timeouts + stats.crashed
        assert_books_balance(stats)
