"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_mine_defaults(self):
        args = build_parser().parse_args(["mine"])
        assert args.domain == "folk_remedies"
        assert args.budget == 1_000

    def test_mine_rejects_unknown_domain(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["mine", "--domain", "sports"])

    def test_experiment_requires_known_name(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["experiment", "e99"])

    def test_classic_options(self):
        args = build_parser().parse_args(
            ["classic", "--items", "50", "--support", "0.1"]
        )
        assert args.items == 50
        assert args.support == 0.1


class TestExecution:
    def test_mine_runs(self, capsys):
        code = main(
            [
                "mine",
                "--members", "8",
                "--budget", "80",
                "--seed", "5",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "questions asked" in out
        assert "ground truth" in out

    def test_classic_runs(self, capsys):
        code = main(
            [
                "classic",
                "--items", "40",
                "--transactions", "300",
                "--top", "3",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "frequent itemsets" in out

    def test_mine_save_cache_then_replay(self, capsys, tmp_path):
        cache_path = tmp_path / "answers.json"
        code = main(
            [
                "mine",
                "--members", "8",
                "--budget", "80",
                "--seed", "5",
                "--save-cache", str(cache_path),
            ]
        )
        assert code == 0
        assert cache_path.exists()
        capsys.readouterr()
        code = main(["replay", str(cache_path), "--support", "0.2"])
        assert code == 0
        out = capsys.readouterr().out
        assert "cached answers" in out

    def test_replay_missing_file_errors(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            main(["replay", str(tmp_path / "nope.json")])

    @pytest.mark.slow
    def test_experiment_smoke_runs(self, capsys):
        code = main(["experiment", "e1", "--scale", "smoke"])
        assert code == 0
        out = capsys.readouterr().out
        assert "crowdminer" in out
        assert "vs questions" in out  # the ascii chart header


class TestRepairFlags:
    """The chaos-hardening surface: --repair, --chaos-kill, kb scrub."""

    def test_serve_parser_takes_repair_and_chaos_kill(self):
        args = build_parser().parse_args(
            ["serve", "--resume", "--repair", "--chaos-kill", "commit:3"]
        )
        assert args.repair
        assert args.chaos_kill == "commit:3"

    def test_mine_parser_takes_repair(self):
        args = build_parser().parse_args(
            ["mine", "--resume", "--checkpoint", "x.db", "--repair"]
        )
        assert args.repair

    def test_bad_chaos_kill_spec_errors(self, capsys):
        code = main(["serve", "--port", "0", "--chaos-kill", "nonsense"])
        assert code == 2
        assert "nonsense" in capsys.readouterr().err

    @pytest.fixture
    def corrupt_store(self, tmp_path, capsys):
        """A finished durable session whose newest checkpoint is damaged."""
        import sqlite3

        path = tmp_path / "s.db"
        code = main(
            [
                "mine", "--members", "6", "--budget", "20", "--seed", "5",
                "--checkpoint", str(path), "--checkpoint-every", "4",
            ]
        )
        assert code == 0
        capsys.readouterr()
        conn = sqlite3.connect(path)
        cid, blob = conn.execute(
            "SELECT id, payload FROM checkpoints ORDER BY id DESC LIMIT 1"
        ).fetchone()
        damaged = bytearray(blob)
        damaged[len(damaged) // 2] ^= 0x20
        conn.execute(
            "UPDATE checkpoints SET payload=? WHERE id=?", (bytes(damaged), cid)
        )
        conn.commit()
        conn.close()
        return path

    def test_kb_reports_scrub_findings(self, corrupt_store, capsys):
        code = main(["kb", str(corrupt_store), "--top", "2"])
        assert code == 0
        out = capsys.readouterr().out
        assert "integrity: 1 corrupt checkpoint(s)" in out

    def test_resume_without_repair_is_loud(self, corrupt_store, capsys):
        code = main(
            ["mine", "--resume", "--checkpoint", str(corrupt_store)]
        )
        assert code == 2
        err = capsys.readouterr().err
        assert "corrupt" in err
        assert "--repair" in err

    def test_resume_with_repair_recovers(self, corrupt_store, capsys):
        code = main(
            ["mine", "--resume", "--repair", "--checkpoint", str(corrupt_store)]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "repair: dropped 1 corrupt checkpoint(s)" in out
        assert "fingerprint:" in out
