"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_mine_defaults(self):
        args = build_parser().parse_args(["mine"])
        assert args.domain == "folk_remedies"
        assert args.budget == 1_000

    def test_mine_rejects_unknown_domain(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["mine", "--domain", "sports"])

    def test_experiment_requires_known_name(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["experiment", "e99"])

    def test_classic_options(self):
        args = build_parser().parse_args(
            ["classic", "--items", "50", "--support", "0.1"]
        )
        assert args.items == 50
        assert args.support == 0.1


class TestExecution:
    def test_mine_runs(self, capsys):
        code = main(
            [
                "mine",
                "--members", "8",
                "--budget", "80",
                "--seed", "5",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "questions asked" in out
        assert "ground truth" in out

    def test_classic_runs(self, capsys):
        code = main(
            [
                "classic",
                "--items", "40",
                "--transactions", "300",
                "--top", "3",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "frequent itemsets" in out

    def test_mine_save_cache_then_replay(self, capsys, tmp_path):
        cache_path = tmp_path / "answers.json"
        code = main(
            [
                "mine",
                "--members", "8",
                "--budget", "80",
                "--seed", "5",
                "--save-cache", str(cache_path),
            ]
        )
        assert code == 0
        assert cache_path.exists()
        capsys.readouterr()
        code = main(["replay", str(cache_path), "--support", "0.2"])
        assert code == 0
        out = capsys.readouterr().out
        assert "cached answers" in out

    def test_replay_missing_file_errors(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            main(["replay", str(tmp_path / "nope.json")])

    @pytest.mark.slow
    def test_experiment_smoke_runs(self, capsys):
        code = main(["experiment", "e1", "--scale", "smoke"])
        assert code == 0
        out = capsys.readouterr().out
        assert "crowdminer" in out
        assert "vs questions" in out  # the ascii chart header
