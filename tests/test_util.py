"""Tests for internal utilities (repro._util)."""

import numpy as np
import pytest

from repro._util import (
    as_rng,
    check_fraction,
    check_nonnegative,
    check_positive,
    clamp01,
    stable_unique,
    weighted_choice,
)
from repro.errors import InvalidThresholdError


class TestAsRng:
    def test_int_seed_deterministic(self):
        assert as_rng(7).random() == as_rng(7).random()

    def test_generator_passthrough(self):
        rng = np.random.default_rng(1)
        assert as_rng(rng) is rng

    def test_none_gives_generator(self):
        assert isinstance(as_rng(None), np.random.Generator)


class TestChecks:
    def test_fraction_accepts_bounds(self):
        assert check_fraction(0.0, "x") == 0.0
        assert check_fraction(1.0, "x") == 1.0

    def test_fraction_rejects_outside(self):
        with pytest.raises(InvalidThresholdError, match="x"):
            check_fraction(1.5, "x")
        with pytest.raises(InvalidThresholdError):
            check_fraction(-0.1, "x")
        with pytest.raises(InvalidThresholdError):
            check_fraction(float("nan"), "x")

    def test_positive(self):
        assert check_positive(3, "n") == 3
        with pytest.raises(InvalidThresholdError):
            check_positive(0, "n")
        with pytest.raises(InvalidThresholdError):
            check_positive(2.5, "n")

    def test_nonnegative(self):
        assert check_nonnegative(0.0, "v") == 0.0
        with pytest.raises(InvalidThresholdError):
            check_nonnegative(-1.0, "v")
        with pytest.raises(InvalidThresholdError):
            check_nonnegative(float("inf"), "v")

    def test_clamp(self):
        assert clamp01(-0.5) == 0.0
        assert clamp01(1.5) == 1.0
        assert clamp01(0.3) == 0.3


class TestStableUnique:
    def test_preserves_first_seen_order(self):
        assert stable_unique([3, 1, 3, 2, 1]) == [3, 1, 2]

    def test_empty(self):
        assert stable_unique([]) == []


class TestWeightedChoice:
    def test_degenerate_weights_fall_back_to_uniform(self, rng):
        seen = {weighted_choice(rng, ["a", "b"], [0.0, 0.0]) for _ in range(50)}
        assert seen == {"a", "b"}

    def test_respects_weights(self, rng):
        counts = {"a": 0, "b": 0}
        for _ in range(500):
            counts[weighted_choice(rng, ["a", "b"], [9.0, 1.0])] += 1
        assert counts["a"] > counts["b"] * 3

    def test_mismatched_lengths(self, rng):
        with pytest.raises(ValueError, match="equal length"):
            weighted_choice(rng, ["a"], [1.0, 2.0])

    def test_empty_options(self, rng):
        with pytest.raises(ValueError, match="empty"):
            weighted_choice(rng, [], [])

    def test_negative_weights_rejected(self, rng):
        with pytest.raises(ValueError, match="non-negative"):
            weighted_choice(rng, ["a"], [-1.0])
