"""Tests for the significance test."""

import numpy as np
import pytest

from repro.core import Rule, RuleStats
from repro.errors import InvalidThresholdError
from repro.estimation import (
    Decision,
    EstimateSummary,
    RuleSamples,
    SignificanceTest,
    Thresholds,
)


def evidence(values):
    store = RuleSamples(Rule(["a"], ["b"]))
    for i, (s, c) in enumerate(values):
        store.add(f"u{i}", RuleStats(s, c))
    return store.summary()


@pytest.fixture
def test():
    return SignificanceTest(Thresholds(0.2, 0.5), min_samples=3)


class TestThresholds:
    def test_valid(self):
        t = Thresholds(0.1, 0.5)
        assert t.as_tuple() == (0.1, 0.5)

    def test_invalid_rejected(self):
        with pytest.raises(InvalidThresholdError):
            Thresholds(1.5, 0.5)


class TestConstruction:
    def test_bad_confidence_rejected(self):
        with pytest.raises(ValueError):
            SignificanceTest(Thresholds(0.1, 0.5), decision_confidence=0.4)
        with pytest.raises(ValueError):
            SignificanceTest(Thresholds(0.1, 0.5), decision_confidence=1.0)

    def test_bad_prior_rejected(self):
        with pytest.raises(ValueError):
            SignificanceTest(Thresholds(0.1, 0.5), prior_std=0.0)


class TestProbability:
    def test_no_evidence_is_half(self, test):
        assert test.probability_significant(evidence([])) == 0.5

    def test_strong_consistent_evidence_high(self, test):
        summary = evidence([(0.5, 0.8)] * 10)
        assert test.probability_significant(summary) > 0.95

    def test_clearly_below_low(self, test):
        summary = evidence([(0.01, 0.05 + 0.01 * i) for i in range(10)])
        assert test.probability_significant(summary) < 0.05

    def test_single_sample_moderate(self, test):
        # One sample uses the wide prior: confident-ish but not settled.
        p = test.probability_significant(evidence([(0.6, 0.9)]))
        assert 0.5 < p < 0.99

    def test_variance_floor_prevents_certainty(self):
        test = SignificanceTest(
            Thresholds(0.2, 0.5), min_samples=3, variance_floor=0.15**2
        )
        # Identical answers near the threshold: the floor keeps doubt alive.
        summary = evidence([(0.25, 0.55)] * 3)
        p = test.probability_significant(summary)
        assert p < 0.9

    def test_support_marginal(self, test):
        summary = evidence([(0.5, 0.9)] * 8)
        assert test.probability_support_exceeds(summary) > 0.95
        summary_low = evidence([(0.01, 0.02 + 0.01 * i) for i in range(8)])
        assert test.probability_support_exceeds(summary_low) < 0.05


class TestDecisions:
    def test_min_samples_blocks_decision(self, test):
        summary = evidence([(0.6, 0.9)] * 2)
        assert test.assess(summary).decision is Decision.UNDECIDED

    def test_significant(self, test):
        summary = evidence([(0.5, 0.8), (0.55, 0.85), (0.6, 0.9), (0.5, 0.8)])
        assert test.assess(summary).decision is Decision.SIGNIFICANT

    def test_insignificant(self, test):
        summary = evidence([(0.0, 0.0), (0.01, 0.02), (0.0, 0.05), (0.02, 0.03)])
        assert test.assess(summary).decision is Decision.INSIGNIFICANT

    def test_boundary_undecided(self, test):
        summary = evidence([(0.15, 0.45), (0.25, 0.55), (0.2, 0.5)])
        assessment = test.assess(summary)
        assert assessment.decision is Decision.UNDECIDED
        assert assessment.uncertainty > 0.1

    def test_uncertainty_definition(self, test):
        assessment = test.assess(evidence([(0.5, 0.8)] * 5))
        p = assessment.probability_significant
        assert assessment.uncertainty == pytest.approx(min(p, 1 - p))

    def test_decision_is_final_property(self):
        assert Decision.SIGNIFICANT.is_final
        assert Decision.INSIGNIFICANT.is_final
        assert not Decision.UNDECIDED.is_final


class TestPointDecision:
    def test_no_evidence_insignificant(self, test):
        assert test.point_decision(evidence([])) is Decision.INSIGNIFICANT

    def test_point_above(self, test):
        assert (
            test.point_decision(evidence([(0.3, 0.6)])) is Decision.SIGNIFICANT
        )

    def test_point_below(self, test):
        assert (
            test.point_decision(evidence([(0.1, 0.6)])) is Decision.INSIGNIFICANT
        )


class TestCovarianceAblation:
    def test_independent_mode_runs(self):
        test = SignificanceTest(Thresholds(0.2, 0.5), use_covariance=False)
        summary = evidence([(0.5, 0.8), (0.4, 0.7), (0.6, 0.9), (0.5, 0.75)])
        p = test.probability_significant(summary)
        assert 0.0 <= p <= 1.0

    def test_modes_differ_with_correlated_evidence(self):
        values = [(0.1 + 0.05 * i, 0.3 + 0.05 * i) for i in range(8)]
        joint = SignificanceTest(Thresholds(0.2, 0.5), use_covariance=True)
        indep = SignificanceTest(Thresholds(0.2, 0.5), use_covariance=False)
        summary = evidence(values)
        assert joint.probability_significant(summary) != pytest.approx(
            indep.probability_significant(summary), abs=1e-4
        )
