"""Tests for consistency-based spammer screening."""

import numpy as np
import pytest

from repro.core import Rule, RuleStats
from repro.estimation import ConsistencyChecker


class TestViolationScoring:
    def test_unknown_member_zero(self):
        checker = ConsistencyChecker()
        assert checker.violation_score("nobody") == 0.0
        assert checker.trust("nobody") == 1.0

    def test_consistent_answers_no_violation(self):
        checker = ConsistencyChecker()
        checker.record("u", Rule(["a"], ["b"]), RuleStats(0.4, 0.6))
        checker.record("u", Rule(["a", "c"], ["b"]), RuleStats(0.2, 0.5))
        assert checker.violation_score("u") == 0.0
        assert checker.trust("u") == 1.0

    def test_monotonicity_violation_detected(self):
        checker = ConsistencyChecker()
        checker.record("u", Rule(["a"], ["b"]), RuleStats(0.1, 0.3))
        checker.record("u", Rule(["a", "c"], ["b"]), RuleStats(0.9, 0.95))
        assert checker.violation_score("u") == pytest.approx(0.8)
        assert checker.trust("u") < 0.5

    def test_body_subset_comparability(self):
        # Different splits with subset-ordered bodies are comparable.
        checker = ConsistencyChecker()
        checker.record("u", Rule(["a"], ["b"]), RuleStats(0.1, 0.3))
        checker.record("u", Rule(["b"], ["a", "c"]), RuleStats(0.9, 0.95))
        assert checker.violation_score("u") > 0.0

    def test_equal_bodies_must_report_equal_support(self):
        checker = ConsistencyChecker()
        checker.record("u", Rule(["a"], ["b"]), RuleStats(0.2, 0.4))
        checker.record("u", Rule(["b"], ["a"]), RuleStats(0.7, 0.9))
        assert checker.violation_score("u") == pytest.approx(0.5)

    def test_incomparable_rules_ignored(self):
        checker = ConsistencyChecker()
        checker.record("u", Rule(["a"], ["b"]), RuleStats(0.1, 0.3))
        checker.record("u", Rule(["x"], ["y"]), RuleStats(0.9, 0.95))
        assert checker.violation_score("u") == 0.0

    def test_revision_replaces_old_answer(self):
        checker = ConsistencyChecker()
        checker.record("u", Rule(["a"], ["b"]), RuleStats(0.1, 0.3))
        checker.record("u", Rule(["a"], ["b"]), RuleStats(0.5, 0.7))
        # Only one stored answer for this rule; no self-comparison pair
        # beyond the one scored at re-record time.
        record = checker._members["u"]
        assert len(record.answers) == 1


class TestTrustAndFlagging:
    def test_tolerance_forgives_small_violations(self):
        checker = ConsistencyChecker(tolerance=0.3)
        checker.record("u", Rule(["a"], ["b"]), RuleStats(0.2, 0.5))
        checker.record("u", Rule(["a", "c"], ["b"]), RuleStats(0.45, 0.6))
        assert checker.trust("u") == 1.0

    def test_flagged_lists_low_trust_members(self):
        checker = ConsistencyChecker(tolerance=0.0, severity=50.0)
        checker.record("bad", Rule(["a"], ["b"]), RuleStats(0.0, 0.1))
        checker.record("bad", Rule(["a", "c"], ["b"]), RuleStats(1.0, 1.0))
        checker.record("good", Rule(["a"], ["b"]), RuleStats(0.5, 0.7))
        checker.record("good", Rule(["a", "c"], ["b"]), RuleStats(0.3, 0.6))
        assert checker.flagged() == ["bad"]

    def test_trust_weights_cover_all_members(self):
        checker = ConsistencyChecker()
        checker.record("u1", Rule(["a"], ["b"]), RuleStats(0.2, 0.4))
        checker.record("u2", Rule(["a"], ["b"]), RuleStats(0.3, 0.5))
        assert set(checker.trust_weights()) == {"u1", "u2"}

    def test_separates_spammers_from_honest(self, rng):
        # Statistical end-to-end check on random comparable pairs.
        checker = ConsistencyChecker()
        base = Rule(["a"], ["b"])
        specific = Rule(["a", "c"], ["b"])
        for k in range(30):
            general_s = rng.uniform(0.4, 0.6)
            specific_s = general_s * rng.uniform(0.3, 0.9)
            checker.record(
                "honest", base, RuleStats(general_s, min(1.0, general_s + 0.2))
            )
            checker.record(
                "honest", specific, RuleStats(specific_s, min(1.0, specific_s + 0.2))
            )
            a, b = sorted(rng.uniform(0, 1, 2))
            checker.record("spammer", base, RuleStats(a, b))
            a, b = sorted(rng.uniform(0, 1, 2))
            checker.record("spammer", specific, RuleStats(a, b))
        assert checker.trust("honest") > checker.trust("spammer")

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            ConsistencyChecker(tolerance=-1)
        with pytest.raises(ValueError):
            ConsistencyChecker(severity=-1)


class TestVersionToken:
    def test_version_counts_recorded_answers(self):
        checker = ConsistencyChecker()
        assert checker.version == 0
        checker.record("u", Rule(["a"], ["b"]), RuleStats(0.4, 0.6))
        assert checker.version == 1
        checker.record("u", Rule(["a", "c"], ["b"]), RuleStats(0.2, 0.5))
        assert checker.version == 2

    def test_trust_reads_do_not_bump(self):
        checker = ConsistencyChecker()
        checker.record("u", Rule(["a"], ["b"]), RuleStats(0.4, 0.6))
        checker.trust("u")
        checker.violation_score("u")
        assert checker.version == 1
