"""Tests for bivariate-normal quadrant probabilities."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.estimation import quadrant_probability, quadrant_probability_independent

unit = st.floats(0.0, 1.0, allow_nan=False)
small_var = st.floats(1e-6, 0.1, allow_nan=False)


class TestDegenerateCases:
    def test_both_deterministic_inside(self):
        p = quadrant_probability(np.array([0.6, 0.8]), np.zeros((2, 2)), (0.5, 0.5))
        assert p == 1.0

    def test_both_deterministic_outside(self):
        p = quadrant_probability(np.array([0.3, 0.8]), np.zeros((2, 2)), (0.5, 0.5))
        assert p == 0.0

    def test_one_degenerate_inside(self):
        cov = np.diag([0.0, 0.01])
        p = quadrant_probability(np.array([0.6, 0.5]), cov, (0.5, 0.5))
        assert p == pytest.approx(0.5, abs=0.01)

    def test_one_degenerate_outside(self):
        cov = np.diag([0.0, 0.01])
        p = quadrant_probability(np.array([0.4, 0.9]), cov, (0.5, 0.5))
        assert p == 0.0


class TestSymmetry:
    def test_centered_independent_quarter(self):
        p = quadrant_probability(np.array([0.5, 0.5]), np.eye(2) * 0.01, (0.5, 0.5))
        assert p == pytest.approx(0.25, abs=1e-6)

    def test_perfect_positive_correlation_half(self):
        # With ρ→1, being above one threshold implies above the other.
        cov = np.array([[0.01, 0.0099999], [0.0099999, 0.01]])
        p = quadrant_probability(np.array([0.5, 0.5]), cov, (0.5, 0.5))
        assert p == pytest.approx(0.5, abs=0.02)

    def test_strong_negative_correlation_near_zero(self):
        cov = np.array([[0.01, -0.0099999], [-0.0099999, 0.01]])
        p = quadrant_probability(np.array([0.5, 0.5]), cov, (0.5, 0.5))
        assert p == pytest.approx(0.0, abs=0.02)


class TestMonotonicity:
    def test_far_above_thresholds_near_one(self):
        p = quadrant_probability(np.array([0.9, 0.9]), np.eye(2) * 1e-4, (0.1, 0.1))
        assert p > 0.999

    def test_far_below_near_zero(self):
        p = quadrant_probability(np.array([0.01, 0.01]), np.eye(2) * 1e-4, (0.5, 0.5))
        assert p < 1e-6

    @settings(max_examples=40, deadline=None)
    @given(unit, unit, small_var, small_var)
    def test_in_unit_interval(self, m1, m2, v1, v2):
        p = quadrant_probability(np.array([m1, m2]), np.diag([v1, v2]), (0.3, 0.5))
        assert 0.0 <= p <= 1.0

    @settings(max_examples=30, deadline=None)
    @given(unit, small_var)
    def test_decreasing_in_threshold(self, mean, var):
        cov = np.diag([var, var])
        lo = quadrant_probability(np.array([mean, mean]), cov, (0.2, 0.2))
        hi = quadrant_probability(np.array([mean, mean]), cov, (0.6, 0.6))
        assert lo >= hi - 1e-9


class TestIndependentVariant:
    def test_matches_joint_for_diagonal_cov(self):
        mean = np.array([0.4, 0.7])
        cov = np.diag([0.02, 0.03])
        joint = quadrant_probability(mean, cov, (0.3, 0.5))
        independent = quadrant_probability_independent(mean, cov, (0.3, 0.5))
        assert joint == pytest.approx(independent, abs=1e-6)

    def test_ignores_correlation(self):
        mean = np.array([0.5, 0.5])
        cov = np.array([[0.01, 0.009], [0.009, 0.01]])
        independent = quadrant_probability_independent(mean, cov, (0.5, 0.5))
        assert independent == pytest.approx(0.25, abs=1e-6)
        joint = quadrant_probability(mean, cov, (0.5, 0.5))
        assert joint > independent  # positive correlation raises the quadrant mass
