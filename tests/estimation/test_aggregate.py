"""Tests for aggregation policies."""

import numpy as np
import pytest

from repro.core import Rule, RuleStats
from repro.estimation import (
    MeanAggregator,
    RuleSamples,
    TrimmedMeanAggregator,
    WeightedAggregator,
)


def store_with(values):
    store = RuleSamples(Rule(["a"], ["b"]))
    for i, (s, c) in enumerate(values):
        store.add(f"u{i}", RuleStats(s, c))
    return store


class TestMean:
    def test_matches_store_summary(self):
        store = store_with([(0.2, 0.5), (0.4, 0.9)])
        agg = MeanAggregator()
        summary = agg.summarize(store)
        assert np.allclose(summary.mean, [0.3, 0.7])
        assert summary.n == 2


class TestTrimmed:
    def test_no_trim_when_too_few_samples(self):
        store = store_with([(0.2, 0.5), (0.4, 0.9)])
        summary = TrimmedMeanAggregator(trim=0.1).summarize(store)
        assert summary.n == 2  # floor(0.1 * 2) == 0 → nothing trimmed

    def test_trims_outliers(self):
        honest = [(0.3, 0.6)] * 8
        spam = [(1.0, 1.0), (0.0, 0.0)]
        store = store_with(honest + spam)
        summary = TrimmedMeanAggregator(trim=0.2).summarize(store)
        assert np.allclose(summary.mean, [0.3, 0.6], atol=1e-9)

    def test_outliers_shift_plain_mean_but_not_trimmed(self):
        honest = [(0.3, 0.6)] * 8
        spam = [(1.0, 1.0)] * 2
        store = store_with(honest + spam)
        plain = MeanAggregator().summarize(store)
        trimmed = TrimmedMeanAggregator(trim=0.2).summarize(store)
        assert plain.mean[0] > trimmed.mean[0]

    def test_invalid_trim_rejected(self):
        with pytest.raises(ValueError):
            TrimmedMeanAggregator(trim=0.5)

    def test_empty_store(self):
        summary = TrimmedMeanAggregator(0.2).summarize(
            store_with([])
        )
        assert summary.n == 0


class TestWeighted:
    def test_zero_weight_excluded(self):
        store = store_with([(0.2, 0.5), (1.0, 1.0)])
        agg = WeightedAggregator({"u1": 0.0})  # u1 is the (1.0, 1.0) spammer
        summary = agg.summarize(store)
        assert np.allclose(summary.mean, [0.2, 0.5])

    def test_uniform_weights_match_mean(self):
        store = store_with([(0.2, 0.5), (0.4, 0.9), (0.6, 0.8)])
        weighted = WeightedAggregator({}).summarize(store)
        plain = MeanAggregator().summarize(store)
        assert np.allclose(weighted.mean, plain.mean)

    def test_all_zero_weights_read_as_no_evidence(self):
        # Every contributor at zero trust (e.g. all quarantined, purge
        # pending): falling back to the unweighted mean would count the
        # distrusted answers at full weight — the summary must instead
        # report no usable evidence so the rule reads as unresolved.
        store = store_with([(0.2, 0.5), (0.4, 0.9)])
        agg = WeightedAggregator({"u0": 0.0, "u1": 0.0}, default_weight=0.0)
        summary = agg.summarize(store)
        assert summary.n == 0

    def test_negative_weight_rejected(self):
        with pytest.raises(ValueError):
            WeightedAggregator({"u0": -1.0})

    def test_empty_store(self):
        summary = WeightedAggregator({}).summarize(store_with([]))
        assert summary.n == 0


class TestVersionTokens:
    def test_pure_policies_report_constant_version(self):
        assert MeanAggregator().version == 0
        assert TrimmedMeanAggregator(0.1).version == 0
        assert WeightedAggregator({"u0": 2.0}).version == 0

    def test_dynamic_trust_follows_its_source(self):
        from repro.estimation import ConsistencyChecker, DynamicTrustAggregator

        checker = ConsistencyChecker()
        agg = DynamicTrustAggregator(checker)
        assert agg.version == 0
        checker.record("u", Rule(["a"], ["b"]), RuleStats(0.4, 0.6))
        assert agg.version == 1
        # Reading the version must not consume it.
        assert agg.version == 1

    def test_versionless_source_never_reports_stable(self):
        from repro.estimation import DynamicTrustAggregator

        class BareTrust:
            def trust(self, member_id):
                return 1.0

        agg = DynamicTrustAggregator(BareTrust())
        # No change signal → every read is a fresh version, so cached
        # summaries keyed on it can never be (wrongly) reused.
        assert agg.version != agg.version
