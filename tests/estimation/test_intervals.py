"""Tests for confidence intervals."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import Rule, RuleStats
from repro.errors import EstimationError
from repro.estimation import (
    Interval,
    RuleSamples,
    summary_intervals,
    wald_interval,
    wilson_interval,
)


class TestInterval:
    def test_basic(self):
        i = Interval(0.2, 0.6)
        assert i.width == pytest.approx(0.4)
        assert i.contains(0.3)
        assert not i.contains(0.7)

    def test_invalid_order_rejected(self):
        with pytest.raises(ValueError):
            Interval(0.6, 0.2)

    def test_out_of_unit_rejected(self):
        with pytest.raises(ValueError):
            Interval(-0.1, 0.5)

    def test_str(self):
        assert str(Interval(0.25, 0.5)) == "[0.250, 0.500]"


class TestWald:
    def test_zero_variance_degenerate(self):
        i = wald_interval(0.4, 0.0)
        assert i.low == i.high == 0.4

    def test_symmetric_about_mean(self):
        i = wald_interval(0.5, 0.01)
        assert (i.low + i.high) / 2 == pytest.approx(0.5)

    def test_clipped_to_unit(self):
        i = wald_interval(0.02, 0.05)
        assert i.low == 0.0

    def test_level_widens(self):
        narrow = wald_interval(0.5, 0.01, level=0.8)
        wide = wald_interval(0.5, 0.01, level=0.99)
        assert wide.width > narrow.width

    def test_negative_variance_rejected(self):
        with pytest.raises(EstimationError):
            wald_interval(0.5, -0.1)


class TestWilson:
    def test_contains_point_estimate(self):
        i = wilson_interval(12, 365)
        assert i.contains(12 / 365)

    def test_extreme_counts_stay_in_unit(self):
        assert wilson_interval(0, 10).low == 0.0
        assert wilson_interval(10, 10).high <= 1.0
        assert wilson_interval(10, 10).contains(1.0) or wilson_interval(10, 10).high < 1.0

    def test_never_degenerate_at_extremes(self):
        # Unlike Wald, Wilson has nonzero width at p=0.
        assert wilson_interval(0, 20).width > 0.0

    def test_more_trials_narrower(self):
        assert wilson_interval(5, 50).width > wilson_interval(50, 500).width

    def test_bad_counts_rejected(self):
        with pytest.raises(EstimationError):
            wilson_interval(11, 10)

    @settings(max_examples=40, deadline=None)
    @given(st.integers(0, 100), st.integers(1, 100))
    def test_always_valid_interval(self, successes, trials):
        successes = min(successes, trials)
        i = wilson_interval(successes, trials)
        assert 0.0 <= i.low <= i.high <= 1.0


class TestSummaryIntervals:
    def store(self, values):
        store = RuleSamples(Rule(["a"], ["b"]))
        for k, (s, c) in enumerate(values):
            store.add(f"u{k}", RuleStats(s, c))
        return store.summary()

    def test_zero_samples_rejected(self):
        with pytest.raises(EstimationError):
            summary_intervals(self.store([]))

    def test_contains_means(self):
        summary = self.store([(0.2, 0.5), (0.4, 0.7), (0.3, 0.6)])
        intervals = summary_intervals(summary)
        assert intervals.support.contains(0.3)
        assert intervals.confidence.contains(0.6)
        assert intervals.n == 3

    def test_joint_wider_than_marginal(self):
        summary = self.store([(0.2, 0.5), (0.4, 0.7), (0.3, 0.6), (0.35, 0.65)])
        marginal = summary_intervals(summary, joint=False)
        joint = summary_intervals(summary, joint=True)
        assert joint.support.width >= marginal.support.width

    def test_more_samples_narrower(self):
        few = self.store([(0.2, 0.5), (0.4, 0.7)])
        values = [(0.2, 0.5), (0.4, 0.7)] * 10
        many = self.store(
            [(s + 0.001 * i, c + 0.001 * i) for i, (s, c) in enumerate(values)]
        )
        assert (
            summary_intervals(many).support.width
            <= summary_intervals(few).support.width
        )
