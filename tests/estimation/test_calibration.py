"""Statistical calibration of the significance machinery.

The whole mining loop leans on one statistical claim: when the test
*settles* a rule at decision confidence γ, it is wrong with probability
at most ≈ 1 − γ. These tests validate that empirically by Monte-Carlo:
draw many synthetic rules with known means, feed the test samples, and
count the decision error rates.

(These are statistical tests with fixed seeds — deterministic given
numpy's stream — and generous margins over the nominal rates.)
"""

import numpy as np
import pytest

from repro.core import Rule, RuleStats
from repro.estimation import RuleSamples, SignificanceTest, Thresholds


def run_population(
    rng,
    test,
    true_mean,
    spread,
    n_rules=200,
    samples_per_rule=25,
):
    """Feed the test ``n_rules`` synthetic rules; return decided error rate."""
    truly_significant = (
        true_mean[0] >= test.thresholds.support
        and true_mean[1] >= test.thresholds.confidence
    )
    wrong = 0
    decided = 0
    for _ in range(n_rules):
        store = RuleSamples(Rule(["a"], ["b"]))
        for k in range(samples_per_rule):
            s = float(np.clip(rng.normal(true_mean[0], spread), 0, 1))
            c = float(np.clip(rng.normal(true_mean[1], spread), 0, 1))
            store.add(f"u{k}", RuleStats(min(s, c), max(s, c)))
            assessment = test.assess(store.summary())
            if assessment.decision.is_final:
                decided += 1
                decided_significant = assessment.decision.value == "significant"
                if decided_significant != truly_significant:
                    wrong += 1
                break
    return decided, wrong


@pytest.fixture
def test():
    return SignificanceTest(
        Thresholds(0.2, 0.5),
        decision_confidence=0.9,
        min_samples=5,
        variance_floor=0.0,  # calibration of the raw test
    )


class TestDecisionErrorRates:
    def test_clearly_significant_rules_rarely_misjudged(self, test):
        rng = np.random.default_rng(42)
        decided, wrong = run_population(rng, test, (0.4, 0.75), spread=0.15)
        assert decided > 150  # the test does settle things
        assert wrong / max(1, decided) <= 0.05

    def test_clearly_insignificant_rules_rarely_misjudged(self, test):
        rng = np.random.default_rng(43)
        decided, wrong = run_population(rng, test, (0.05, 0.2), spread=0.15)
        assert decided > 150
        assert wrong / max(1, decided) <= 0.05

    def test_borderline_rules_mostly_stay_undecided_early(self, test):
        # True mean exactly on the threshold corner: with few samples
        # the test should not confidently decide either way.
        rng = np.random.default_rng(44)
        decided, wrong = run_population(
            rng, test, (0.2, 0.5), spread=0.15, n_rules=100, samples_per_rule=6
        )
        assert decided < 60  # most stay undecided at 6 samples

    def test_sequential_stopping_inflates_error_mildly(self, test):
        # Deciding at the *first* crossing of the confidence bar is a
        # sequential test; its realized error exceeds the nominal
        # pointwise rate but must stay in a sane band. This documents
        # the known behaviour rather than hiding it.
        rng = np.random.default_rng(45)
        decided, wrong = run_population(rng, test, (0.27, 0.57), spread=0.2)
        assert decided > 100
        assert wrong / max(1, decided) <= 0.25


class TestVarianceFloorEffect:
    def test_floor_delays_decisions_on_coarse_answers(self):
        rng = np.random.default_rng(46)
        floored = SignificanceTest(
            Thresholds(0.2, 0.5), min_samples=3, variance_floor=0.15**2
        )
        unfloored = SignificanceTest(
            Thresholds(0.2, 0.5), min_samples=3, variance_floor=0.0
        )
        # Three identical coarse answers just above threshold.
        store = RuleSamples(Rule(["a"], ["b"]))
        for k in range(3):
            store.add(f"u{k}", RuleStats(0.25, 0.55))
        summary = store.summary()
        assert unfloored.assess(summary).decision.is_final
        assert not floored.assess(summary).decision.is_final
