"""Property tests for the streaming mean/covariance estimator."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.estimation import StreamingMeanCov

observations = st.lists(
    st.tuples(
        st.floats(0.0, 1.0, allow_nan=False), st.floats(0.0, 1.0, allow_nan=False)
    ),
    min_size=1,
    max_size=40,
)


class TestAgainstNumpy:
    @settings(max_examples=80, deadline=None)
    @given(observations)
    def test_mean_matches(self, data):
        est = StreamingMeanCov()
        for x in data:
            est.add(x)
        assert np.allclose(est.mean, np.mean(data, axis=0), atol=1e-10)

    @settings(max_examples=80, deadline=None)
    @given(observations)
    def test_cov_matches(self, data):
        est = StreamingMeanCov()
        for x in data:
            est.add(x)
        if len(data) < 2:
            assert np.allclose(est.cov, 0.0)
        else:
            expected = np.cov(np.array(data), rowvar=False, ddof=1)
            assert np.allclose(est.cov, expected, atol=1e-9)

    @settings(max_examples=40, deadline=None)
    @given(observations, st.integers(0, 39))
    def test_remove_inverts_add(self, data, index):
        index = index % len(data)
        est = StreamingMeanCov()
        for x in data:
            est.add(x)
        est.remove(data[index])
        remaining = data[:index] + data[index + 1 :]
        if not remaining:
            assert est.n == 0
        else:
            assert np.allclose(est.mean, np.mean(remaining, axis=0), atol=1e-9)
            if len(remaining) >= 2:
                expected = np.cov(np.array(remaining), rowvar=False, ddof=1)
                assert np.allclose(est.cov, expected, atol=1e-8)


class TestBasics:
    def test_empty_state(self):
        est = StreamingMeanCov()
        assert est.n == 0
        assert np.allclose(est.mean, 0.0)
        assert np.allclose(est.cov, 0.0)
        assert np.allclose(est.sem_cov, 0.0)

    def test_sem_cov_is_cov_over_n(self):
        est = StreamingMeanCov()
        for x in [(0.1, 0.2), (0.3, 0.6), (0.2, 0.9)]:
            est.add(x)
        assert np.allclose(est.sem_cov, est.cov / 3)

    def test_bad_shape_rejected(self):
        with pytest.raises(ValueError, match="2-vector"):
            StreamingMeanCov().add((1.0, 2.0, 3.0))  # type: ignore[arg-type]

    def test_remove_from_empty_rejected(self):
        with pytest.raises(ValueError):
            StreamingMeanCov().remove((0.1, 0.1))

    def test_copy_is_independent(self):
        est = StreamingMeanCov()
        est.add((0.5, 0.5))
        clone = est.copy()
        clone.add((0.1, 0.9))
        assert est.n == 1
        assert clone.n == 2

    def test_variance_never_negative_after_removals(self):
        est = StreamingMeanCov()
        data = [(0.1, 0.1), (0.1, 0.1), (0.1, 0.1)]
        for x in data:
            est.add(x)
        est.remove((0.1, 0.1))
        assert est.cov[0, 0] >= 0.0
        assert est.cov[1, 1] >= 0.0
