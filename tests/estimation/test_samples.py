"""Tests for per-rule sample stores."""

import numpy as np
import pytest

from repro.core import Rule, RuleStats
from repro.estimation import RuleSamples


@pytest.fixture
def store():
    return RuleSamples(Rule(["a"], ["b"]))


class TestAccumulation:
    def test_counts_distinct_members(self, store):
        store.add("u1", RuleStats(0.2, 0.5))
        store.add("u2", RuleStats(0.4, 0.6))
        assert store.n == 2
        assert store.member_ids == {"u1", "u2"}

    def test_same_member_revises_not_appends(self, store):
        store.add("u1", RuleStats(0.2, 0.5))
        store.add("u1", RuleStats(0.8, 0.9))
        assert store.n == 1
        assert store.observation_of("u1") == RuleStats(0.8, 0.9)
        summary = store.summary()
        assert np.allclose(summary.mean, [0.8, 0.9])

    def test_revision_keeps_estimator_exact(self, store):
        store.add("u1", RuleStats(0.2, 0.5))
        store.add("u2", RuleStats(0.4, 0.6))
        store.add("u1", RuleStats(0.6, 0.7))
        summary = store.summary()
        data = np.array([[0.6, 0.7], [0.4, 0.6]])
        assert np.allclose(summary.mean, data.mean(axis=0))
        expected_cov = np.cov(data, rowvar=False, ddof=1) / 2
        assert np.allclose(summary.mean_cov, expected_cov, atol=1e-9)

    def test_has_answer_from(self, store):
        store.add("u1", RuleStats(0.2, 0.5))
        assert store.has_answer_from("u1")
        assert not store.has_answer_from("u2")

    def test_observation_of_missing_is_none(self, store):
        assert store.observation_of("nobody") is None


class TestSummaries:
    def test_empty_summary(self, store):
        summary = store.summary()
        assert summary.n == 0
        assert np.allclose(summary.mean, 0.0)

    def test_single_sample_no_cov(self, store):
        store.add("u1", RuleStats(0.3, 0.6))
        summary = store.summary()
        assert summary.n == 1
        assert np.allclose(summary.mean, [0.3, 0.6])
        assert np.allclose(summary.mean_cov, 0.0)

    def test_as_array_shape(self, store):
        assert store.as_array().shape == (0, 2)
        store.add("u1", RuleStats(0.3, 0.6))
        assert store.as_array().shape == (1, 2)


class TestVersion:
    def test_starts_at_zero(self, store):
        assert store.version == 0

    def test_bumps_on_every_add(self, store):
        store.add("u1", RuleStats(0.2, 0.5))
        assert store.version == 1
        # A revision is a change too — cached aggregates must expire.
        store.add("u1", RuleStats(0.4, 0.6))
        assert store.version == 2

    def test_reads_do_not_bump(self, store):
        store.add("u1", RuleStats(0.2, 0.5))
        store.summary()
        store.as_array()
        assert store.version == 1
