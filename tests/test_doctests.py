"""Run the library's doctests as part of the suite.

Docstring examples are part of the public documentation; this keeps
them honest.
"""

import doctest
import importlib

import pytest

MODULES_WITH_DOCTESTS = [
    "repro.core.items",
    "repro.core.itemset",
    "repro.core.rule",
    "repro.core.transactions",
    "repro.crowd.stream",
    "repro.estimation.welford",
    "repro.estimation.samples",
    "repro.synth.quest",
]


@pytest.mark.parametrize("module_name", MODULES_WITH_DOCTESTS)
def test_doctests(module_name):
    module = importlib.import_module(module_name)
    results = doctest.testmod(module, verbose=False)
    assert results.failed == 0, f"{results.failed} doctest failures in {module_name}"
    assert results.attempted > 0, f"no doctests found in {module_name}"
