"""Tests for evaluation metrics."""

import pytest

from repro.core import Rule, RuleStats
from repro.estimation import Thresholds
from repro.eval import PRPoint, QualityCurve, average_curves, precision_recall, score_report
from repro.miner import GroundTruth


def make_truth(rules):
    return GroundTruth(
        thresholds=Thresholds(0.1, 0.5),
        significant=frozenset(rules),
        stats={r: RuleStats(0.2, 0.6) for r in rules},
    )


R1, R2, R3 = Rule(["a"], ["b"]), Rule(["c"], ["d"]), Rule(["e"], ["f"])


class TestPrecisionRecall:
    def test_perfect(self):
        truth = make_truth([R1, R2])
        assert precision_recall([R1, R2], truth) == (1.0, 1.0)

    def test_partial(self):
        truth = make_truth([R1, R2])
        p, r = precision_recall([R1, R3], truth)
        assert p == 0.5
        assert r == 0.5

    def test_empty_report_precision_one(self):
        truth = make_truth([R1])
        p, r = precision_recall([], truth)
        assert p == 1.0
        assert r == 0.0

    def test_empty_truth_recall_one(self):
        truth = make_truth([])
        p, r = precision_recall([R1], truth)
        assert p == 0.0
        assert r == 1.0


class TestPRPoint:
    def test_f1(self):
        point = PRPoint(10, 0.5, 0.5)
        assert point.f1 == pytest.approx(0.5)

    def test_f1_zero_when_both_zero(self):
        assert PRPoint(10, 0.0, 0.0).f1 == 0.0

    def test_score_report(self):
        truth = make_truth([R1, R2])
        point = score_report([R1], truth, questions=42)
        assert point.questions == 42
        assert point.precision == 1.0
        assert point.recall == 0.5


class TestQualityCurve:
    def curve(self):
        return QualityCurve(
            "x",
            (
                PRPoint(10, 1.0, 0.1),
                PRPoint(20, 1.0, 0.5),
                PRPoint(30, 0.9, 0.9),
            ),
        )

    def test_order_enforced(self):
        with pytest.raises(ValueError, match="ordered"):
            QualityCurve("x", (PRPoint(20, 1, 1), PRPoint(10, 1, 1)))

    def test_final(self):
        assert self.curve().final().questions == 30

    def test_final_empty_raises(self):
        with pytest.raises(ValueError):
            QualityCurve("x", ()).final()

    def test_questions_to_recall(self):
        assert self.curve().questions_to_recall(0.5) == 20
        assert self.curve().questions_to_recall(0.95) is None

    def test_questions_to_f1(self):
        curve = self.curve()
        assert curve.questions_to_f1(0.6) == 20  # f1(20) ≈ 0.667
        assert curve.questions_to_f1(0.95) is None


class TestAverageCurves:
    def test_pointwise_average(self):
        a = QualityCurve("a", (PRPoint(10, 1.0, 0.2), PRPoint(20, 1.0, 0.6)))
        b = QualityCurve("b", (PRPoint(10, 0.5, 0.4), PRPoint(20, 0.8, 0.8)))
        avg = average_curves("avg", [a, b])
        assert avg.points[0].precision == pytest.approx(0.75)
        assert avg.points[1].recall == pytest.approx(0.7)

    def test_mismatched_grids_rejected(self):
        a = QualityCurve("a", (PRPoint(10, 1.0, 0.2),))
        b = QualityCurve("b", (PRPoint(20, 1.0, 0.2),))
        with pytest.raises(ValueError, match="mismatched"):
            average_curves("avg", [a, b])

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            average_curves("avg", [])
