"""Tests for experiment-result exporters."""

import csv
import io
import json

from repro.eval import PRPoint, QualityCurve
from repro.eval.export import results_to_csv, results_to_json, save_results
from repro.eval.runner import ExperimentConfig, ExperimentResult, RepetitionOutcome


def make_result(label):
    curve = QualityCurve(
        label, (PRPoint(10, 1.0, 0.4), PRPoint(20, 0.9, 0.8))
    )
    rep = RepetitionOutcome(
        curve=curve,
        truth_size=12,
        rules_discovered=30,
        inferred_classifications=2,
        open_questions=5,
        wall_seconds=0.1,
    )
    config = ExperimentConfig(name=label, budget=20, checkpoints=(10, 20))
    return ExperimentResult(config=config, curve=curve, repetitions=(rep,))


RESULTS = {"a": make_result("a"), "b": make_result("b")}


class TestCSV:
    def test_row_per_checkpoint_per_variant(self):
        rows = list(csv.reader(io.StringIO(results_to_csv(RESULTS))))
        assert rows[0] == ["variant", "questions", "precision", "recall", "f1"]
        assert len(rows) == 1 + 2 * 2

    def test_values_parse_back(self):
        rows = list(csv.DictReader(io.StringIO(results_to_csv(RESULTS))))
        first = rows[0]
        assert first["variant"] == "a"
        assert float(first["precision"]) == 1.0
        assert float(first["f1"]) > 0


class TestJSON:
    def test_document_shape(self):
        doc = results_to_json(RESULTS)
        assert doc["format"] == "experiment-results"
        assert set(doc["variants"]) == {"a", "b"}
        curve = doc["variants"]["a"]["curve"]
        assert curve[0]["questions"] == 10
        assert doc["variants"]["a"]["config"]["budget"] == 20

    def test_json_serializable(self):
        json.dumps(results_to_json(RESULTS))


class TestSave:
    def test_writes_both_files(self, tmp_path):
        csv_path, json_path = save_results(RESULTS, tmp_path / "out", "e1")
        assert csv_path.exists() and json_path.exists()
        assert "variant" in csv_path.read_text()
        loaded = json.loads(json_path.read_text())
        assert loaded["format"] == "experiment-results"
