"""Tests for the experiment runner (small, fast configs)."""

import pytest

from repro.crowd import ComposedAnswerModel, ExactAnswerModel, LikertAnswerModel, NoisyAnswerModel
from repro.errors import ConfigurationError
from repro.eval import ExperimentConfig, build_world, run_experiment, run_session, run_variants


TINY = ExperimentConfig(
    name="tiny",
    n_items=40,
    n_patterns=5,
    n_members=8,
    transactions_per_member=50,
    budget=60,
    checkpoints=(20, 60),
    repetitions=2,
    seed=3,
)


class TestConfigValidation:
    def test_checkpoints_must_ascend(self):
        with pytest.raises(ConfigurationError):
            ExperimentConfig(checkpoints=(100, 50), budget=100)

    def test_checkpoints_within_budget(self):
        with pytest.raises(ConfigurationError):
            ExperimentConfig(checkpoints=(200,), budget=100)

    def test_checkpoints_positive(self):
        with pytest.raises(ConfigurationError):
            ExperimentConfig(checkpoints=(0, 50), budget=100)

    def test_checkpoints_required(self):
        with pytest.raises(ConfigurationError):
            ExperimentConfig(checkpoints=(), budget=100)


class TestAnswerModelConstruction:
    def test_exact(self):
        cfg = ExperimentConfig(answer_sigma=0.0, likert=False)
        assert isinstance(cfg.answer_model(), ExactAnswerModel)

    def test_likert_only(self):
        cfg = ExperimentConfig(answer_sigma=0.0, likert=True)
        assert isinstance(cfg.answer_model(), LikertAnswerModel)

    def test_noise_only(self):
        cfg = ExperimentConfig(answer_sigma=0.1, likert=False)
        assert isinstance(cfg.answer_model(), NoisyAnswerModel)

    def test_composed(self):
        cfg = ExperimentConfig(answer_sigma=0.1, likert=True)
        assert isinstance(cfg.answer_model(), ComposedAnswerModel)


class TestBuildWorld:
    def test_world_shape(self):
        model, population, truth = build_world(TINY, seed=1)
        assert len(model.patterns) == 5
        assert len(population) == 8
        assert population.equal_sized

    def test_deterministic(self):
        _, pop_a, truth_a = build_world(TINY, seed=1)
        _, pop_b, truth_b = build_world(TINY, seed=1)
        assert truth_a.significant == truth_b.significant
        assert [list(m.db) for m in pop_a] == [list(m.db) for m in pop_b]


class TestRunSession:
    def test_curve_on_checkpoint_grid(self):
        _, population, truth = build_world(TINY, seed=1)
        outcome = run_session(TINY, population, truth, seed=2)
        assert tuple(p.questions for p in outcome.curve.points) == (20, 60)
        assert outcome.wall_seconds > 0


class TestRunExperiment:
    def test_fully_deterministic_across_calls(self):
        # World seeding must not depend on process state (hash salt).
        a = run_experiment(TINY)
        b = run_experiment(TINY)
        assert [p.f1 for p in a.curve.points] == [p.f1 for p in b.curve.points]
        assert a.mean_truth_size == b.mean_truth_size

    def test_averages_repetitions(self):
        result = run_experiment(TINY)
        assert len(result.repetitions) == 2
        assert result.curve.label == "tiny"
        assert result.mean_truth_size > 0

    def test_run_variants_overrides(self):
        results = run_variants(TINY, {
            "rand": {"strategy": "random"},
            "rr": {"strategy": "roundrobin"},
        })
        assert set(results) == {"rand", "rr"}
        assert results["rand"].config.strategy == "random"
        assert results["rand"].config.name == "rand"
