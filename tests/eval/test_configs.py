"""Tests for the canonical experiment configs."""

import dataclasses

import pytest

from repro.errors import ConfigurationError
from repro.eval import EXPERIMENTS
from repro.eval.configs import _base


@pytest.mark.parametrize("name", sorted(EXPERIMENTS))
@pytest.mark.parametrize("scale", ["full", "smoke"])
class TestAllConfigs:
    def test_builds_valid_configs(self, name, scale):
        base, variants = EXPERIMENTS[name](scale)
        assert variants
        for label, overrides in variants.items():
            config = dataclasses.replace(base, name=label, **overrides)
            assert config.budget >= max(config.checkpoints)

    def test_variant_labels_unique_and_nonempty(self, name, scale):
        _, variants = EXPERIMENTS[name](scale)
        assert all(label for label in variants)


class TestScales:
    def test_smoke_smaller_than_full(self):
        assert _base("smoke").budget < _base("full").budget
        assert _base("smoke").n_members < _base("full").n_members

    def test_unknown_scale_rejected(self):
        with pytest.raises(ConfigurationError):
            _base("galactic")


class TestSpecificExperiments:
    def test_e1_covers_all_strategies(self):
        _, variants = EXPERIMENTS["e1"]("smoke")
        strategies = {v["strategy"] for v in variants.values()}
        assert strategies == {"crowdminer", "roundrobin", "random", "horizontal"}

    def test_e2_includes_adaptive(self):
        _, variants = EXPERIMENTS["e2"]("smoke")
        assert "adaptive" in variants

    def test_e9_includes_full_baseline(self):
        _, variants = EXPERIMENTS["e9"]("smoke")
        assert variants["full"] == {}
