"""Tests for the ASCII curve chart."""

import pytest

from repro.eval import PRPoint, QualityCurve, ascii_chart


def curve(label, values):
    points = tuple(
        PRPoint(questions=(i + 1) * 100, precision=v, recall=v)
        for i, v in enumerate(values)
    )
    return QualityCurve(label, points)


class TestAsciiChart:
    def test_contains_markers_and_legend(self):
        chart = ascii_chart({"one": curve("one", [0.2, 0.8])})
        assert "a=one" in chart
        assert "a" in chart.splitlines()[1:][0] or any(
            "a" in line for line in chart.splitlines()
        )

    def test_multiple_curves_distinct_markers(self):
        chart = ascii_chart(
            {"x": curve("x", [0.1, 0.2]), "y": curve("y", [0.8, 0.9])}
        )
        assert "a=x" in chart and "b=y" in chart

    def test_high_values_near_top(self):
        chart = ascii_chart({"hi": curve("hi", [1.0, 1.0])}, height=5)
        lines = chart.splitlines()
        assert "a" in lines[1]  # first grid row (top)

    def test_metric_selection(self):
        points = (PRPoint(100, 1.0, 0.0),)
        c = QualityCurve("z", points)
        chart_p = ascii_chart({"z": c}, metric="precision", height=5)
        chart_r = ascii_chart({"z": c}, metric="recall", height=5)
        assert chart_p.splitlines()[1].count("a") == 1  # top row
        assert chart_r.splitlines()[-3].count("a") == 1  # bottom grid row

    def test_unknown_metric(self):
        with pytest.raises(ValueError, match="metric"):
            ascii_chart({"z": curve("z", [0.5])}, metric="accuracy")

    def test_empty(self):
        assert ascii_chart({}) == "(no curves)"

    def test_axis_labels(self):
        chart = ascii_chart({"z": curve("z", [0.5, 0.6])})
        assert chart.splitlines()[0].startswith("f1")
        assert "0..200" in chart.splitlines()[0]
