"""Tests for text reporting."""

from repro.eval import (
    PRPoint,
    QualityCurve,
    format_curve,
    format_rows,
    format_summary_table,
)
from repro.eval.runner import ExperimentConfig, ExperimentResult, RepetitionOutcome


def make_result(label="v1"):
    curve = QualityCurve(
        label, (PRPoint(10, 1.0, 0.4), PRPoint(20, 0.9, 0.8))
    )
    rep = RepetitionOutcome(
        curve=curve,
        truth_size=12,
        rules_discovered=30,
        inferred_classifications=2,
        open_questions=5,
        wall_seconds=0.1,
    )
    config = ExperimentConfig(name=label, budget=20, checkpoints=(10, 20))
    return ExperimentResult(config=config, curve=curve, repetitions=(rep,))


class TestFormatCurve:
    def test_contains_all_checkpoints(self):
        text = format_curve(make_result().curve)
        assert "10" in text and "20" in text
        assert "[v1]" in text

    def test_columns_labelled(self):
        text = format_curve(make_result().curve)
        assert "precision" in text and "recall" in text and "F1" in text


class TestSummaryTable:
    def test_one_row_per_variant(self):
        table = format_summary_table({"a": make_result("a"), "b": make_result("b")})
        lines = table.splitlines()
        assert len(lines) == 4  # header + separator + 2 rows

    def test_q_to_f1_dash_when_unreached(self):
        table = format_summary_table({"a": make_result("a")})
        # F1 at final point ≈ 0.847 < 0.9; 0.8 is reached at q=20.
        assert "—" not in table.splitlines()[2].split()[0]


class TestFormatRows:
    def test_alignment(self):
        table = format_rows(("name", "value"), [("x", 1), ("longer", 22)])
        lines = table.splitlines()
        assert lines[0].startswith("name")
        assert len(lines) == 4

    def test_empty_rows(self):
        table = format_rows(("a", "b"), [])
        assert "a" in table
