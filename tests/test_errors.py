"""Tests for the exception hierarchy."""

import pytest

import repro.errors as errors


ALL_ERRORS = [
    errors.InvalidItemError,
    errors.InvalidRuleError,
    errors.InvalidThresholdError,
    errors.EmptyDatabaseError,
    errors.BudgetExhaustedError,
    errors.NoQuestionAvailableError,
    errors.CrowdExhaustedError,
    errors.ConfigurationError,
    errors.EstimationError,
]


@pytest.mark.parametrize("exc", ALL_ERRORS)
def test_all_derive_from_repro_error(exc):
    assert issubclass(exc, errors.ReproError)
    assert issubclass(exc, Exception)


def test_catching_base_catches_all(tiny_db):
    """One except clause suffices for library failures."""
    from repro.classic import fpgrowth_frequent_itemsets
    from repro.core import TransactionDB

    with pytest.raises(errors.ReproError):
        fpgrowth_frequent_itemsets(TransactionDB([]), 0.5)


def test_every_error_documented():
    for exc in ALL_ERRORS + [errors.ReproError]:
        assert exc.__doc__, exc.__name__
