"""Unit contract of the fault-injecting storage wrapper.

The chaos matrix only proves anything if :class:`FaultyBackend`
actually injects what the plan says, deterministically, and damages
bytes *below* the checksum seal — so the scrub has to catch the damage
the honest way.
"""

import random

import pytest

from repro.chaos import FaultyBackend, StorageFaultPlan
from repro.storage import (
    AnswerRecord,
    MemoryBackend,
    SQLiteBackend,
    StorageError,
    scrub_store,
)
from repro.storage.integrity import open_payload, seal_payload


def record(seq):
    return AnswerRecord(
        seq=seq, member_id=f"u{seq}", kind="closed",
        rule_key=None, support=0.3, confidence=0.7,
    )


def sealed(seq: int = 0) -> bytes:
    return seal_payload(b"payload-%d" % seq * 50)


class TestPlanValidation:
    def test_zero_ordinal_rejected(self):
        with pytest.raises(ValueError):
            StorageFaultPlan(torn_checkpoints=(0,))

    def test_negative_probability_rejected(self):
        from repro.chaos import TransportFaultPlan

        with pytest.raises(ValueError):
            TransportFaultPlan(drop_request=-0.1)
        with pytest.raises(ValueError):
            TransportFaultPlan(duplicate=1.5)

    def test_clean_plan_knows_it(self):
        assert StorageFaultPlan().is_clean
        assert not StorageFaultPlan(lost_checkpoints=(1,)).is_clean

    def test_fuzz_plans_are_valid_and_seeded(self):
        rng_a, rng_b = random.Random(7), random.Random(7)
        plans = [StorageFaultPlan.fuzz(rng_a) for _ in range(20)]
        again = [StorageFaultPlan.fuzz(rng_b) for _ in range(20)]
        assert plans == again


class TestInjectedFaults:
    def test_disk_full_on_planned_append_only(self):
        store = FaultyBackend(
            MemoryBackend(), StorageFaultPlan(disk_full_appends=(2,))
        )
        store.append_answer(record(0))
        with pytest.raises(StorageError, match="disk-full"):
            store.append_answer(record(1))
        store.append_answer(record(2))
        # The failed append never reached the inner backend.
        assert [r.seq for r in store.answers()] == [0, 2]
        assert store.counts == {"chaos.storage.disk_full": 1}

    def test_torn_checkpoint_fails_checksum(self):
        store = FaultyBackend(
            MemoryBackend(), StorageFaultPlan(seed=3, torn_checkpoints=(1,))
        )
        store.save_checkpoint(sealed(), questions=5, kb_rules=2)
        info, blob = store.latest_checkpoint()
        assert len(blob) < len(sealed())
        with pytest.raises(StorageError):
            open_payload(blob)

    def test_bitflip_keeps_length_but_fails_checksum(self):
        store = FaultyBackend(
            MemoryBackend(), StorageFaultPlan(seed=3, bitflip_checkpoints=(1,))
        )
        store.save_checkpoint(sealed(), questions=5, kb_rules=2)
        _info, blob = store.latest_checkpoint()
        assert len(blob) == len(sealed())
        assert blob != sealed()
        with pytest.raises(StorageError):
            open_payload(blob)

    def test_lost_checkpoint_never_reaches_disk(self):
        store = FaultyBackend(
            MemoryBackend(), StorageFaultPlan(lost_checkpoints=(1,))
        )
        info = store.save_checkpoint(sealed(), questions=5, kb_rules=2)
        # The caller saw success (a lost fsync lies), yet nothing landed.
        assert info.questions == 5
        assert store.latest_checkpoint() is None
        assert store.counts == {"chaos.storage.lost": 1}

    def test_unplanned_ordinals_pass_through_clean(self):
        store = FaultyBackend(
            MemoryBackend(), StorageFaultPlan(seed=9, torn_checkpoints=(2,))
        )
        store.save_checkpoint(sealed(0), questions=1, kb_rules=0)
        store.save_checkpoint(sealed(1), questions=2, kb_rules=0)
        store.save_checkpoint(sealed(2), questions=3, kb_rules=0)
        blobs = [store.load_checkpoint(i.checkpoint_id)[1] for i in store.checkpoints()]
        assert blobs[0] == sealed(0)
        assert open_payload(blobs[2]) == open_payload(sealed(2))
        with pytest.raises(StorageError):
            open_payload(blobs[1])

    def test_same_plan_injects_identical_damage(self):
        def run():
            store = FaultyBackend(
                MemoryBackend(),
                StorageFaultPlan(
                    seed=11, torn_checkpoints=(1,), bitflip_checkpoints=(2,)
                ),
            )
            store.save_checkpoint(sealed(0), questions=1, kb_rules=0)
            store.save_checkpoint(sealed(1), questions=2, kb_rules=0)
            return [blob for _, blob in store.inner._checkpoints]

        assert run() == run()

    def test_scrub_finds_exactly_the_damaged_rows(self, tmp_path):
        store = FaultyBackend(
            SQLiteBackend(tmp_path / "s.db"),
            StorageFaultPlan(seed=5, bitflip_checkpoints=(2,)),
        )
        for n in range(3):
            store.append_answer(record(n))
            store.save_checkpoint(sealed(n), questions=n + 1, kb_rules=0)
        verified, corrupt = scrub_store(store)
        assert [info.questions for info in corrupt] == [2]
        assert [info.questions for info in verified] == [1, 3]
        store.close()


class TestInstrumentation:
    def test_bind_obs_replays_pre_binding_faults(self):
        from repro.obs import Instrumentation

        store = FaultyBackend(
            MemoryBackend(), StorageFaultPlan(lost_checkpoints=(1, 2))
        )
        store.save_checkpoint(sealed(), questions=1, kb_rules=0)
        obs = Instrumentation()
        store.bind_obs(obs)
        assert obs.snapshot().counters["chaos.storage.lost"] == 1
        store.save_checkpoint(sealed(), questions=2, kb_rules=0)
        assert obs.snapshot().counters["chaos.storage.lost"] == 2

    def test_describe_marks_the_wrapper(self):
        store = FaultyBackend(MemoryBackend())
        assert store.describe().startswith("chaos(")
