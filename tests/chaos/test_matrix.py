"""The chaos matrix: (storage × transport × crash) ⇒ byte-identical.

The tentpole acceptance test. Every cell of the default 3×3×3 matrix —
torn/bit-flipped/lost checkpoints and injected disk-full, dropped/
duplicated/replayed/delayed traffic, zero/one/two mid-run crashes —
must end with the serve books balanced and the final KB fingerprint
byte-identical to a fault-free synchronous run of the same seeded
world. A seeded fuzz draw walks coordinates the grid does not.
"""

import random

import pytest

from repro.chaos import (
    ChaosCell,
    StorageFaultPlan,
    TransportFaultPlan,
    default_matrix,
    fuzz_cell,
    run_cell,
)
from repro.serve import Scenario, run_sync

SCENARIO = Scenario(n_members=6, transactions_per_member=40, budget=40)


@pytest.fixture(scope="module")
def reference():
    return run_sync(SCENARIO).fingerprint()


def _fail_message(outcome):
    return (
        f"cell {outcome.cell.describe()} diverged: "
        f"fp_match={outcome.fingerprint == outcome.reference} "
        f"balanced={outcome.balanced} serve={outcome.serve} "
        f"storage={outcome.storage_counts} transport={outcome.transport_counts}"
    )


@pytest.mark.slow
class TestDefaultMatrix:
    @pytest.mark.parametrize(
        "cell", default_matrix(), ids=lambda cell: cell.label
    )
    def test_cell_converges(self, cell, reference, tmp_path):
        outcome = run_cell(SCENARIO, cell, tmp_path, reference=reference)
        assert outcome.converged, _fail_message(outcome)

    def test_matrix_is_three_by_three_by_three(self):
        cells = default_matrix()
        assert len(cells) == 27
        assert sum(1 for c in cells if not c.storage.is_clean) == 27
        assert sum(1 for c in cells if c.crashes) == 18


@pytest.mark.slow
class TestFuzzDraw:
    def test_fuzzed_cells_converge(self, reference, tmp_path):
        rng = random.Random(20260808)
        for n in range(3):
            cell = fuzz_cell(rng)
            outcome = run_cell(
                SCENARIO, cell, tmp_path / f"cell{n}", reference=reference
            )
            assert outcome.converged, _fail_message(outcome)


@pytest.mark.slow
class TestRecoveryPaths:
    """Pin that the interesting recovery branches actually run."""

    def test_corrupt_latest_checkpoint_is_repaired_on_resume(
        self, reference, tmp_path
    ):
        cell = ChaosCell(
            storage=StorageFaultPlan(seed=7, bitflip_checkpoints=(2,)),
            crashes=(7,),
        )
        outcome = run_cell(SCENARIO, cell, tmp_path, reference=reference)
        assert outcome.converged, _fail_message(outcome)
        assert outcome.repaired >= 1
        assert outcome.restarted == 0

    def test_nothing_durable_degrades_to_clean_restart(self, reference, tmp_path):
        cell = ChaosCell(
            storage=StorageFaultPlan(seed=8, lost_checkpoints=tuple(range(1, 30))),
            crashes=(7,),
        )
        outcome = run_cell(SCENARIO, cell, tmp_path, reference=reference)
        assert outcome.converged, _fail_message(outcome)
        assert outcome.restarted == 1

    def test_faulted_cells_really_injected_faults(self, reference, tmp_path):
        cell = ChaosCell(
            storage=StorageFaultPlan(seed=9, disk_full_appends=(3, 4)),
            transport=TransportFaultPlan(
                seed=10, drop_request=0.15, drop_response=0.1, duplicate=0.1
            ),
            crashes=(6,),
        )
        outcome = run_cell(SCENARIO, cell, tmp_path, reference=reference)
        assert outcome.converged, _fail_message(outcome)
        assert outcome.storage_counts.get("chaos.storage.disk_full", 0) == 2
        assert sum(outcome.transport_counts.values()) > 0
        assert outcome.client_retries > 0
        # Dropped responses + duplicates hit the dedup table, not the books.
        assert outcome.serve["issued"] == SCENARIO.budget
        assert outcome.serve["answered"] == SCENARIO.budget
