"""Cross-process SIGKILL at named kill-points, then real resume.

The in-process ``abort()`` the matrix uses claims to leave exactly the
on-disk state a real ``kill -9`` would. These tests collect on that
claim: a real ``repro serve`` child process SIGKILLs *itself* (via
``--chaos-kill PHASE:N``) at each storage/request kill-point — after a
WAL append, between the answer batch and its COMMIT, mid-checkpoint,
mid-request — and a second process resumes the directory with
``--resume --repair``. The finished fingerprint must equal the
uninterrupted sync run's, byte for byte, at every kill-point.
"""

import asyncio
import os
import subprocess
import sys
from pathlib import Path

import pytest

from repro.serve import (
    JsonClient,
    RetryingClient,
    Scenario,
    SimulatedWorkerPool,
    drive_session,
    run_sync,
)

SRC = Path(__file__).resolve().parents[2] / "src"

SCENARIO = Scenario(n_members=6, transactions_per_member=40, budget=40)


def _env():
    env = dict(os.environ)
    env["PYTHONPATH"] = str(SRC) + os.pathsep + env.get("PYTHONPATH", "")
    return env


def _spawn_server(tmp_path, *extra):
    proc = subprocess.Popen(
        [
            sys.executable, "-u", "-m", "repro", "serve",
            "--port", "0", "--data-dir", str(tmp_path), *extra,
        ],
        stdout=subprocess.PIPE,
        stderr=subprocess.PIPE,
        text=True,
        env=_env(),
    )
    line = proc.stdout.readline().strip()
    assert line.startswith("serving on http://"), (line, proc.stderr.read())
    port = int(line.rsplit(":", 1)[1])
    return proc, port


async def _drive_until_death(port, pool, crowd, *, create):
    """Feed the doomed server answers until the SIGKILL cuts us off."""
    client = JsonClient("127.0.0.1", port)
    fetches = 0
    try:
        if create:
            status, doc = await client.request(
                "POST",
                "/v1/sessions",
                SCENARIO.session_spec(
                    crowd.member_ids, id="kp", checkpoint_every=4
                ),
            )
            assert status == 201, doc
        while True:
            _, doc = await client.request(
                "POST",
                "/v1/sessions/kp/question",
                {"idempotency_key": f"pre-f{fetches}"},
            )
            fetches += 1
            if doc.get("status") != "ok":
                return False  # finished before the kill-point fired
            question = doc["question"]
            await client.request(
                "POST",
                "/v1/sessions/kp/answer",
                {
                    "question_id": question["question_id"],
                    "answer": pool.answer(question),
                    "idempotency_key": f"a-{question['question_id']}",
                },
            )
    except (ConnectionError, asyncio.IncompleteReadError, OSError):
        return True
    finally:
        await client.aclose()


async def _finish(port, pool):
    client = RetryingClient(JsonClient("127.0.0.1", port), seed=1)
    try:
        await drive_session(client, "kp", pool, key_prefix="post-")
        _, result = await client.request("GET", "/v1/sessions/kp/result")
        await client.request("POST", "/v1/shutdown")
        return result
    finally:
        await client.aclose()


@pytest.mark.slow
class TestKillPoints:
    @pytest.mark.parametrize(
        "kill_spec",
        ["append:9", "commit:2", "checkpoint:2", "request:11"],
        ids=lambda spec: spec.split(":")[0],
    )
    def test_sigkill_then_repair_resume_converges(self, kill_spec, tmp_path):
        sync_fp = run_sync(SCENARIO).fingerprint()
        crowd = SCENARIO.build_crowd()
        pool = SimulatedWorkerPool(crowd)

        proc, port = _spawn_server(tmp_path, "--chaos-kill", kill_spec)
        died = asyncio.run(_drive_until_death(port, pool, crowd, create=True))
        assert died, "server finished before the kill-point fired"
        proc.wait(timeout=30)
        # SIGKILL, self-inflicted: no drain, no exit handler, no zero.
        assert proc.returncode == -9

        proc2, port2 = _spawn_server(tmp_path, "--resume", "--repair")
        result = asyncio.run(_finish(port2, pool))
        out, err = proc2.communicate(timeout=30)
        assert proc2.returncode == 0, (out, err)
        assert result["fingerprint"] == sync_fp
        assert result["serve"]["outstanding"] == 0
