"""Public-API surface tests.

Guards the contract a downstream user relies on: everything advertised
in ``__all__`` exists, is importable from the top level, and carries a
docstring; the package layering stays acyclic and strict.
"""

import importlib
import inspect

import pytest

import repro

SUBPACKAGES = [
    "repro.core",
    "repro.classic",
    "repro.synth",
    "repro.crowd",
    "repro.estimation",
    "repro.miner",
    "repro.eval",
]

#: Layering order — a package may import only from itself, earlier
#: entries, and the shared top-level helpers (errors, _util).
LAYERS = {name: index for index, name in enumerate(SUBPACKAGES)}


class TestTopLevel:
    def test_version(self):
        assert repro.__version__

    def test_all_names_resolve(self):
        for name in repro.__all__:
            assert getattr(repro, name, None) is not None, name

    @pytest.mark.parametrize("package", SUBPACKAGES)
    def test_subpackage_all_resolves(self, package):
        module = importlib.import_module(package)
        assert module.__doc__, f"{package} lacks a docstring"
        for name in module.__all__:
            assert getattr(module, name, None) is not None, f"{package}.{name}"

    @pytest.mark.parametrize("package", SUBPACKAGES)
    def test_public_objects_documented(self, package):
        module = importlib.import_module(package)
        undocumented = []
        for name in module.__all__:
            obj = getattr(module, name)
            if inspect.isclass(obj) or inspect.isfunction(obj):
                if not inspect.getdoc(obj):
                    undocumented.append(f"{package}.{name}")
        assert not undocumented, undocumented


class TestLayering:
    @pytest.mark.parametrize("package", SUBPACKAGES)
    def test_no_upward_imports(self, package):
        """Source files must not import from higher layers."""
        import pathlib

        root = pathlib.Path(repro.__file__).parent
        sub = root / package.split(".")[1]
        own_layer = LAYERS[package]
        violations = []
        for path in sub.rglob("*.py"):
            text = path.read_text()
            for other, layer in LAYERS.items():
                if layer <= own_layer:
                    continue
                if f"from {other}" in text or f"import {other}" in text:
                    violations.append(f"{path.name} imports {other}")
        assert not violations, violations

    def test_core_is_dependency_free(self):
        import pathlib

        root = pathlib.Path(repro.__file__).parent / "core"
        for path in root.rglob("*.py"):
            text = path.read_text()
            for other in SUBPACKAGES[1:]:
                assert f"from {other}" not in text, f"{path.name} imports {other}"
