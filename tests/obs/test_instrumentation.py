"""Tests for the session instrumentation layer."""

import time

from repro.obs import Instrumentation, ObsSnapshot, RecordingSink, TimerStats


class TestCounters:
    def test_unknown_counter_reads_zero(self):
        assert Instrumentation().counter("never.touched") == 0

    def test_count_accumulates(self):
        obs = Instrumentation()
        obs.count("kb.rules_added")
        obs.count("kb.rules_added", by=3)
        assert obs.counter("kb.rules_added") == 4

    def test_counters_are_independent(self):
        obs = Instrumentation()
        obs.count("a")
        obs.count("b", by=2)
        assert obs.counter("a") == 1
        assert obs.counter("b") == 2


class TestTimers:
    def test_timer_accumulates_calls_and_time(self):
        obs = Instrumentation()
        for _ in range(3):
            with obs.timer("miner.step"):
                time.sleep(0.001)
        stats = obs.snapshot().timers["miner.step"]
        assert stats.calls == 3
        assert stats.total_seconds > 0.0
        assert stats.mean_ms > 0.0

    def test_same_name_returns_same_timer(self):
        obs = Instrumentation()
        assert obs.timer("x") is obs.timer("x")

    def test_mean_ms_zero_when_never_entered(self):
        assert TimerStats(calls=0, total_seconds=0.0).mean_ms == 0.0

    def test_timer_survives_exceptions(self):
        obs = Instrumentation()
        try:
            with obs.timer("x"):
                raise RuntimeError("boom")
        except RuntimeError:
            pass
        assert obs.snapshot().timers["x"].calls == 1


class TestTracing:
    def test_no_sink_means_not_tracing(self):
        obs = Instrumentation()
        assert not obs.tracing
        obs.emit("question", index=0)  # must be a silent no-op

    def test_events_reach_the_sink(self):
        sink = RecordingSink()
        obs = Instrumentation(sink=sink)
        assert obs.tracing
        obs.emit("question", index=0, kind="closed")
        obs.emit("question", index=1, kind="open")
        assert len(sink) == 2
        assert sink.events[0].name == "question"
        assert sink.events[0].fields["kind"] == "closed"
        assert sink.events[1].fields["index"] == 1


class TestSnapshot:
    def test_snapshot_is_a_copy(self):
        obs = Instrumentation()
        obs.count("a")
        snap = obs.snapshot()
        obs.count("a")
        assert snap.counters["a"] == 1
        assert obs.counter("a") == 2

    def test_empty_snapshot(self):
        snap = Instrumentation().snapshot()
        assert snap == ObsSnapshot(counters={}, timers={})
        assert snap.format() == ""

    def test_format_mentions_every_entry(self):
        obs = Instrumentation()
        obs.count("miner.questions", by=7)
        with obs.timer("miner.step"):
            pass
        text = obs.snapshot().format()
        assert "miner.questions" in text and "7" in text
        assert "miner.step" in text and "ms/call" in text
