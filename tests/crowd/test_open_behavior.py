"""Tests for open-answer behaviour."""

import numpy as np
import pytest

from repro.core import Itemset, Rule, RuleStats, TransactionDB
from repro.crowd import OpenAnswerPolicy, PersonalRuleCache


@pytest.fixture
def db():
    # "cough→tea" dominates; "headache→coffee" is a weaker habit.
    return TransactionDB(
        [["cough", "tea"]] * 8 + [["headache", "coffee"]] * 2
    )


class TestPersonalRules:
    def test_pool_respects_thresholds(self, db):
        policy = OpenAnswerPolicy(
            personal_min_support=0.5, personal_min_confidence=0.5
        )
        pool = policy.personal_rules(db)
        assert Rule(["cough"], ["tea"]) in pool
        assert Rule(["headache"], ["coffee"]) not in pool  # support 0.2

    def test_pool_caps_body_size(self):
        db = TransactionDB([["a", "b", "c", "d", "e"]] * 5)
        policy = OpenAnswerPolicy(max_body_size=2)
        pool = policy.personal_rules(db)
        assert all(len(rule) <= 2 for rule in pool)

    def test_empty_db_empty_pool(self):
        assert OpenAnswerPolicy().personal_rules(TransactionDB([])) == {}

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            OpenAnswerPolicy(max_body_size=0)


class TestChoose:
    def test_prominence_prefers_strong_rules(self, db, rng):
        policy = OpenAnswerPolicy(
            personal_min_support=0.1, personal_min_confidence=0.3, sharpness=2.0
        )
        pool = policy.personal_rules(db)
        counts = {True: 0, False: 0}
        for _ in range(100):
            rule, _ = policy.choose(pool, Itemset.empty(), set(), rng)
            counts[rule.body == Itemset(["cough", "tea"])] += 1
        assert counts[True] > counts[False]

    def test_exclusion(self, db, rng):
        policy = OpenAnswerPolicy(personal_min_support=0.1)
        pool = policy.personal_rules(db)
        choice = policy.choose(pool, Itemset.empty(), set(pool), rng)
        assert choice is None

    def test_context_filters_antecedent(self, db, rng):
        policy = OpenAnswerPolicy(
            personal_min_support=0.1, personal_min_confidence=0.3
        )
        pool = policy.personal_rules(db)
        for _ in range(20):
            choice = policy.choose(pool, Itemset(["headache"]), set(), rng)
            if choice is None:
                break
            rule, _ = choice
            assert "headache" in rule.antecedent

    def test_zero_sharpness_is_uniform(self, db, rng):
        policy = OpenAnswerPolicy(
            personal_min_support=0.1, personal_min_confidence=0.3, sharpness=0.0
        )
        pool = policy.personal_rules(db)
        seen = set()
        for _ in range(300):
            rule, _ = policy.choose(pool, Itemset.empty(), set(), rng)
            seen.add(rule)
        assert seen == set(pool)


class TestCache:
    def test_pool_computed_once(self, db):
        policy = OpenAnswerPolicy()
        cache = PersonalRuleCache(policy)
        first = cache.pool_for(db)
        second = cache.pool_for(db)
        assert first is second

    def test_distinct_dbs_distinct_pools(self, db):
        other = TransactionDB([["x", "y"]] * 5)
        cache = PersonalRuleCache(OpenAnswerPolicy(personal_min_support=0.1))
        assert cache.pool_for(db) is not cache.pool_for(other)
