"""Tests for question/answer value objects."""

import pytest

from repro.core import Itemset, Rule, RuleStats
from repro.crowd import ClosedAnswer, ClosedQuestion, OpenAnswer, OpenQuestion


class TestQuestions:
    def test_closed_str(self):
        q = ClosedQuestion(Rule(["a"], ["b"]))
        assert "{a} -> {b}" in str(q)

    def test_open_default_context_empty(self):
        assert not OpenQuestion().context

    def test_open_context_str(self):
        q = OpenQuestion(Itemset(["headache"]))
        assert "headache" in str(q)

    def test_questions_hashable(self):
        assert len({ClosedQuestion(Rule(["a"], ["b"])), OpenQuestion()}) == 2


class TestAnswers:
    def test_closed_answer_rule_shortcut(self):
        q = ClosedQuestion(Rule(["a"], ["b"]))
        a = ClosedAnswer("u1", q, RuleStats(0.2, 0.5))
        assert a.rule == q.rule
        assert a.member_id == "u1"

    def test_open_answer_full(self):
        a = OpenAnswer("u1", OpenQuestion(), Rule(["a"], ["b"]), RuleStats(0.2, 0.5))
        assert not a.is_empty

    def test_open_answer_empty(self):
        a = OpenAnswer("u1", OpenQuestion(), None, None)
        assert a.is_empty

    def test_open_answer_half_empty_rejected(self):
        with pytest.raises(ValueError, match="both"):
            OpenAnswer("u1", OpenQuestion(), Rule(["a"], ["b"]), None)
        with pytest.raises(ValueError, match="both"):
            OpenAnswer("u1", OpenQuestion(), None, RuleStats(0.2, 0.5))
