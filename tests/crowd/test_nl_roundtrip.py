"""Round-trip properties of the NL answer protocol.

What a front-end renders (Likert vocabulary, numeric stats) must
survive the trip back through :func:`~repro.crowd.stream.parse_stats`
under everything a human typist does to text: case mangling, leading /
trailing / internal whitespace. And everything that is *not* a
rendering of a valid answer must come back as ``ValueError`` — the one
exception the protocol layer is allowed to raise — never anything
else.
"""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crowd import LIKERT_LABELS, WORD_TO_VALUE, parse_stats
from repro.crowd.answer_models import LIKERT5


def mangled(text):
    """Strategy: ``text`` under adversarial casing and whitespace."""
    return st.tuples(
        st.sampled_from(["", " ", "  ", "\t", " \t "]),
        st.booleans(),
        st.sampled_from(["", " ", "   ", "\t"]),
    ).map(
        lambda pad: pad[0] + (text.upper() if pad[1] else text) + pad[2]
    )


class TestLikertRoundTrip:
    @settings(max_examples=60, deadline=None)
    @given(st.sampled_from(sorted(LIKERT_LABELS)), st.data())
    def test_label_round_trips(self, value, data):
        word = LIKERT_LABELS[value]
        stats = parse_stats(data.draw(mangled(word)))
        assert stats.support == stats.confidence == value

    def test_vocabulary_covers_the_grid(self):
        # The rendered scale and the parser's vocabulary are the same
        # five points; a drifting grid would break the round trip.
        assert set(LIKERT_LABELS) == set(LIKERT5)
        assert WORD_TO_VALUE == {w: v for v, w in LIKERT_LABELS.items()}


class TestNumericRoundTrip:
    @settings(max_examples=60, deadline=None)
    @given(
        st.tuples(
            st.floats(0.0, 1.0, allow_nan=False),
            st.floats(0.0, 1.0, allow_nan=False),
        ),
        st.sampled_from([" ", "  ", "\t", " \t"]),
    )
    def test_two_numbers_round_trip(self, pair, separator):
        support, confidence = min(pair), max(pair)
        stats = parse_stats(f" {support!r}{separator}{confidence!r} ")
        assert stats.support == support
        assert stats.confidence == confidence


class TestGarbageBoundary:
    @settings(max_examples=60, deadline=None)
    @given(
        st.text(
            alphabet=st.characters(whitelist_categories=("Ll", "Lu")),
            min_size=1,
            max_size=12,
        )
    )
    def test_unknown_words_raise_value_error_only(self, word):
        if word.lower() in WORD_TO_VALUE:
            return  # an actual vocabulary word; round-trips instead
        with pytest.raises(ValueError):
            parse_stats(word)

    @settings(max_examples=60, deadline=None)
    @given(
        st.floats(allow_nan=True, allow_infinity=True),
        st.floats(allow_nan=True, allow_infinity=True),
    )
    def test_out_of_range_numbers_raise_value_error_only(self, a, b):
        in_range = (
            not math.isnan(a)
            and not math.isnan(b)
            and 0.0 <= a <= 1.0
            and 0.0 <= b <= 1.0
        )
        if in_range:
            return  # the valid quadrant is covered by the round-trip test
        # NaN, infinities and out-of-range floats all parse as floats —
        # the range gate must turn them into ValueError, not leak
        # RuleStats' internal validation error (a ReproError).
        with pytest.raises(ValueError):
            parse_stats(f"{a!r} {b!r}")
