"""ArrayCrowd: the vectorized crowd answers like the object crowd.

Byte-identity contract (module docstring of
``repro/crowd/array_crowd.py``): for the same population columns,
seed, answer model and patience, an ``ArrayCrowd`` must answer every
question bit-for-bit like a ``SimulatedCrowd`` built over
``population.materialize()`` — scheduling, closed answers (including
noisy per-member generator streams), open answers, patience and
quarantine semantics all included.
"""

import pickle

import numpy as np
import pytest

from repro.core import Rule
from repro.crowd import (
    ArrayCrowd,
    ExactAnswerModel,
    SimulatedCrowd,
    standard_answer_model,
)
from repro.errors import CrowdExhaustedError
from repro.synth import ArrayPopulation, folk_remedies_model


@pytest.fixture(scope="module")
def model():
    return folk_remedies_model(seed=1)


@pytest.fixture(scope="module")
def population(model):
    return ArrayPopulation(model, n_members=40, transactions_per_member=80, seed=7)


def paired_crowds(population, answer_model_factory, patience=None):
    array_crowd = ArrayCrowd(
        population, answer_model=answer_model_factory(), patience=patience, seed=5
    )
    object_crowd = SimulatedCrowd.from_population(
        population.materialize(),
        answer_model=answer_model_factory(),
        patience=patience,
        seed=5,
    )
    return array_crowd, object_crowd


def some_rules(model, count, seed):
    rng = np.random.default_rng(seed)
    items = tuple(model.domain.items)
    rules = set()
    while len(rules) < count:
        size = int(rng.integers(2, 5))
        chosen = [items[k] for k in rng.choice(len(items), size=size, replace=False)]
        cut = int(rng.integers(1, size))
        rules.add(Rule(chosen[:cut], chosen[cut:]))
    return sorted(rules, key=str)


class TestClosedAnswerByteIdentity:
    def test_exact_model_answers_match(self, model, population):
        array_crowd, object_crowd = paired_crowds(population, ExactAnswerModel)
        for rule in some_rules(model, 20, seed=21):
            member = array_crowd.next_member()
            assert member == object_crowd.next_member()
            ours = array_crowd.ask_closed(member, rule)
            theirs = object_crowd.ask_closed(member, rule)
            assert ours.stats == theirs.stats, (member, rule)

    def test_noisy_model_streams_match(self, model, population):
        # The per-member generator streams must coincide, so even the
        # sampled reporting noise is identical answer for answer.
        array_crowd, object_crowd = paired_crowds(population, standard_answer_model)
        for rule in some_rules(model, 30, seed=22):
            member = array_crowd.next_member()
            object_crowd.next_member()
            ours = array_crowd.ask_closed(member, rule)
            theirs = object_crowd.ask_closed(member, rule)
            assert ours.stats == theirs.stats, (member, rule)

    def test_repeat_questions_to_one_member_advance_the_same_stream(
        self, model, population
    ):
        array_crowd, object_crowd = paired_crowds(population, standard_answer_model)
        member = array_crowd.member_ids[3]
        for rule in some_rules(model, 10, seed=23):
            assert (
                array_crowd.ask_closed(member, rule).stats
                == object_crowd.ask_closed(member, rule).stats
            )


class TestOpenAnswerByteIdentity:
    def test_open_answers_match(self, population):
        array_crowd, object_crowd = paired_crowds(population, standard_answer_model)
        for _ in range(12):
            member = array_crowd.next_member()
            object_crowd.next_member()
            ours = array_crowd.ask_open(member)
            theirs = object_crowd.ask_open(member)
            assert ours.rule == theirs.rule
            assert ours.stats == theirs.stats


class TestScheduling:
    def test_round_robin_with_exclusions_matches(self, population):
        array_crowd, object_crowd = paired_crowds(population, ExactAnswerModel)
        exclude: list[str] = []
        for _ in range(60):
            ours = array_crowd.next_member(exclude=exclude)
            theirs = object_crowd.next_member(exclude=exclude)
            assert ours == theirs
            if ours is not None:
                exclude.append(ours)
            if len(exclude) > 5:
                exclude.pop(0)

    def test_crash_and_quarantine_track_object_path(self, population):
        array_crowd, object_crowd = paired_crowds(population, ExactAnswerModel)
        victim = array_crowd.member_ids[2]
        array_crowd.crash(victim)
        object_crowd.crash(victim)
        bad = array_crowd.member_ids[5]
        array_crowd.quarantine(bad)
        object_crowd.quarantine(bad)
        assert array_crowd.available_count() == object_crowd.available_count()
        for _ in range(40):
            assert array_crowd.next_member() == object_crowd.next_member()

    def test_patience_exhaustion_matches(self, model, population):
        array_crowd, object_crowd = paired_crowds(
            population, ExactAnswerModel, patience=2
        )
        rule = some_rules(model, 1, seed=24)[0]
        member = array_crowd.member_ids[0]
        for _ in range(2):
            array_crowd.ask_closed(member, rule)
            object_crowd.ask_closed(member, rule)
        assert not array_crowd.is_member_available(member)
        assert not object_crowd.is_member_available(member)
        with pytest.raises(CrowdExhaustedError):
            array_crowd.ask_closed(member, rule)

    def test_partitions_cover_the_crowd_disjointly(self, population):
        crowd = ArrayCrowd(population, answer_model=ExactAnswerModel(), seed=5)
        parts = crowd.partitions(4)
        seen: list[str] = []
        for part in parts:
            seen.extend(part.member_ids)
        assert sorted(seen) == sorted(crowd.member_ids)
        assert len(set(seen)) == len(seen)


class TestBatchAnswering:
    def test_batch_matches_scalar_for_rng_free_models(self, model, population):
        # Exact answers consume no randomness, so the batched draw and
        # the scalar path must coincide exactly.
        crowd = ArrayCrowd(population, answer_model=ExactAnswerModel(), seed=5)
        scalar_crowd = ArrayCrowd(population, answer_model=ExactAnswerModel(), seed=5)
        rules = some_rules(model, 8, seed=25)
        members = crowd.member_ids[: len(rules)]
        batched = crowd.ask_closed_batch(
            list(members), list(rules), np.random.default_rng(77)
        )
        for answer, member, rule in zip(batched, members, rules):
            assert answer.stats == scalar_crowd.ask_closed(member, rule).stats

    def test_batch_is_deterministic_under_its_seed(self, model, population):
        rules = some_rules(model, 8, seed=26)

        def run():
            crowd = ArrayCrowd(
                population, answer_model=standard_answer_model(), seed=5
            )
            members = crowd.member_ids[: len(rules)]
            answers = crowd.ask_closed_batch(
                list(members), list(rules), np.random.default_rng(78)
            )
            return [a.stats for a in answers]

        assert run() == run()


class TestCheckpointFootprint:
    def test_pickle_stays_sparse_at_scale(self, model):
        big = ArrayPopulation(model, n_members=500_000, transactions_per_member=50, seed=9)
        crowd = ArrayCrowd(big, answer_model=ExactAnswerModel(), seed=5)
        # Question a handful of members so sparse state exists.
        rule = some_rules(model, 1, seed=27)[0]
        for member in crowd.member_ids[:5]:
            crowd.ask_closed(member, rule)
        payload = pickle.dumps(crowd)
        assert len(payload) < 100_000, (
            f"500k-member crowd pickled to {len(payload)} bytes — "
            "member state is leaking into checkpoints"
        )
        restored = pickle.loads(payload)
        assert len(restored) == len(crowd)
        assert restored.stats.closed_questions == crowd.stats.closed_questions
