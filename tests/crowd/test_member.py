"""Tests for simulated crowd members."""

import pytest

from repro.core import Itemset, Rule, TransactionDB
from repro.crowd import (
    ClosedQuestion,
    ExactAnswerModel,
    OpenAnswerPolicy,
    OpenQuestion,
    SimulatedMember,
)
from repro.errors import CrowdExhaustedError


@pytest.fixture
def member():
    db = TransactionDB(
        [["cough", "tea"]] * 6 + [["cough"]] * 2 + [["headache", "coffee"]] * 2
    )
    return SimulatedMember(
        member_id="u1",
        db=db,
        answer_model=ExactAnswerModel(),
        open_policy=OpenAnswerPolicy(personal_min_support=0.2),
        seed=1,
    )


class TestClosedAnswers:
    def test_exact_member_reports_truth(self, member):
        answer = member.answer_closed(ClosedQuestion(Rule(["cough"], ["tea"])))
        assert answer.stats.support == pytest.approx(0.6)
        assert answer.stats.confidence == pytest.approx(0.75)
        assert answer.member_id == "u1"

    def test_unknown_rule_is_zero(self, member):
        answer = member.answer_closed(ClosedQuestion(Rule(["yoga"], ["tea"])))
        assert answer.stats.support == 0.0


class TestOpenAnswers:
    def test_volunteers_a_personal_rule(self, member):
        answer = member.answer_open(OpenQuestion())
        assert not answer.is_empty
        assert member.db.rule_stats(answer.rule).support > 0

    def test_never_repeats_itself(self, member):
        seen = set()
        for _ in range(30):
            answer = member.answer_open(OpenQuestion())
            if answer.is_empty:
                break
            assert answer.rule not in seen
            seen.add(answer.rule)
        assert answer.is_empty  # memory eventually exhausted

    def test_respects_exclusion(self, member):
        exclude = set(
            member._cache.pool_for(member.db)  # the full personal pool
        )
        answer = member.answer_open(OpenQuestion(), exclude=exclude)
        assert answer.is_empty

    def test_context_restricts_antecedent(self, member):
        answer = member.answer_open(OpenQuestion(Itemset(["headache"])))
        if not answer.is_empty:
            assert "headache" in answer.rule.antecedent


class TestPatience:
    def test_patience_limits_questions(self, member):
        member.patience = 2
        member.answer_closed(ClosedQuestion(Rule(["cough"], ["tea"])))
        member.answer_open(OpenQuestion())
        assert not member.is_available
        with pytest.raises(CrowdExhaustedError):
            member.answer_closed(ClosedQuestion(Rule(["cough"], ["tea"])))

    def test_unbounded_by_default(self, member):
        for _ in range(50):
            member.answer_closed(ClosedQuestion(Rule(["cough"], ["tea"])))
        assert member.is_available
        assert member.questions_answered == 50
