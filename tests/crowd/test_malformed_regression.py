"""Regression: malformed answers are dropped, counted — never fatal.

The bug class this pins (ISSUE satellite): one unparseable line from
one member used to end the whole mining session, and stats lines like
``"1.5 2.0"`` or ``"NaN NaN"`` — which ``float()`` happily parses —
leaked :class:`~repro.errors.InvalidThresholdError` out of the
protocol layer instead of the contractual ``ValueError``.
"""

import pytest

from repro.core import Rule
from repro.crowd import (
    ClosedQuestion,
    MalformedAnswer,
    SimulatedCrowd,
    StreamMember,
    parse_stats,
    standard_answer_model,
)
from repro.estimation import Thresholds
from repro.faults import GarbledMember, build_adversarial_crowd
from repro.miner import CrowdMiner, CrowdMinerConfig

RULE = Rule(["cough"], ["tea"])


class TestParseStatsContract:
    @pytest.mark.parametrize(
        "text",
        [
            "1.5 2.0",  # parses as floats, out of range
            "-0.5 0.5",
            "NaN NaN",  # parses as floats, never comparable
            "inf inf",
            "0.9 0.2",  # in range, incoherent
            "i dunno maybe",
            "0.3;0.6",
        ],
    )
    def test_bad_stats_raise_value_error_only(self, text):
        # ValueError and nothing else: StreamMember catches exactly
        # ValueError to build MalformedAnswer, so any other exception
        # type here crashes a live session.
        with pytest.raises(ValueError):
            parse_stats(text)


class TestStreamMemberSurvivesGarbage:
    def test_garbage_line_becomes_malformed_answer(self):
        member = StreamMember("u1", ["1.5 2.0", "often"])
        first = member.answer_closed(ClosedQuestion(RULE))
        assert isinstance(first, MalformedAnswer)
        assert first.raw_text == "1.5 2.0"
        # ...and the member keeps going; the next line still works.
        second = member.answer_closed(ClosedQuestion(RULE))
        assert not isinstance(second, MalformedAnswer)
        assert second.stats.support == 0.75


class TestMinerGateSurvivesGarbage:
    def test_ingest_drops_and_counts_malformed(self, folk_population):
        crowd = SimulatedCrowd.from_population(
            folk_population, answer_model=standard_answer_model(), seed=5
        )
        miner = CrowdMiner(
            crowd,
            CrowdMinerConfig(thresholds=Thresholds(0.10, 0.5), budget=50, seed=6),
        )
        proposal = miner.propose_question(crowd.available_members()[0])
        garbage = MalformedAnswer(
            proposal.member_id, ClosedQuestion(RULE), "???", "cannot parse"
        )
        assert miner.ingest_answer(proposal, garbage) is None
        assert miner.obs.snapshot().counters["answers.malformed"] == 1

    def test_session_with_garbled_member_runs_to_completion(
        self, folk_population
    ):
        # One member answering pure garbage must cost their questions,
        # not the session: the run ends by budget, with every garbage
        # line counted.
        crowd, roles = build_adversarial_crowd(
            folk_population,
            (("garbled", 0.1),),
            answer_model=standard_answer_model(),
            seed=5,
        )
        garbled = {m for m, r in roles.items() if r == "garbled"}
        assert garbled
        miner = CrowdMiner(
            crowd,
            CrowdMinerConfig(thresholds=Thresholds(0.10, 0.5), budget=150, seed=6),
        )
        result = miner.run()
        counters = miner.obs.snapshot().counters
        assert counters["answers.malformed"] > 0
        assert result.questions_asked > 0

    def test_all_garbage_crowd_still_terminates(self, folk_population):
        # Even a crowd that *only* produces garbage must end cleanly
        # (no evidence, no exception) rather than loop or crash.
        crowd, _ = build_adversarial_crowd(
            folk_population, (("garbled", 1.0),), seed=5
        )
        miner = CrowdMiner(
            crowd,
            CrowdMinerConfig(thresholds=Thresholds(0.10, 0.5), budget=40, seed=6),
        )
        result = miner.run()
        assert not result.significant
        assert miner.obs.snapshot().counters["answers.malformed"] > 0

    def test_garbled_wrapper_preserves_member_protocol(self, folk_population):
        crowd = SimulatedCrowd.from_population(
            folk_population, answer_model=standard_answer_model(), seed=5
        )
        inner = crowd._members[crowd.available_members()[0]]
        wrapped = GarbledMember(inner, rate=1.0, seed=3)
        assert wrapped.member_id == inner.member_id
        assert wrapped.is_available == inner.is_available
        assert wrapped.questions_answered == inner.questions_answered
