"""Tests for the SimulatedCrowd facade."""

import pytest

from repro.core import Rule, TransactionDB
from repro.crowd import (
    ExactAnswerModel,
    SimulatedCrowd,
    SimulatedMember,
    SpammerAnswerModel,
)
from repro.errors import CrowdExhaustedError


def make_crowd(n=3, patience=None, seed=0):
    db = TransactionDB([["a", "b"]] * 5 + [["a"]] * 5)
    members = [
        SimulatedMember(
            member_id=f"u{i}", db=db, answer_model=ExactAnswerModel(),
            patience=patience, seed=i,
        )
        for i in range(n)
    ]
    return SimulatedCrowd(members, seed=seed)


class TestConstruction:
    def test_empty_crowd_rejected(self):
        with pytest.raises(CrowdExhaustedError):
            SimulatedCrowd([])

    def test_duplicate_ids_rejected(self):
        db = TransactionDB([["a"]])
        members = [
            SimulatedMember("u", db),
            SimulatedMember("u", db),
        ]
        with pytest.raises(ValueError, match="unique"):
            SimulatedCrowd(members)

    def test_from_population(self, folk_population):
        crowd = SimulatedCrowd.from_population(folk_population, seed=1)
        assert len(crowd) == len(folk_population)
        assert crowd.member_ids == [m.member_id for m in folk_population]

    def test_from_population_factory(self, folk_population):
        crowd = SimulatedCrowd.from_population(
            folk_population,
            answer_model_factory=lambda i: SpammerAnswerModel(),
            seed=1,
        )
        assert len(crowd) == len(folk_population)

    def test_model_and_factory_mutually_exclusive(self, folk_population):
        with pytest.raises(ValueError, match="not both"):
            SimulatedCrowd.from_population(
                folk_population,
                answer_model=ExactAnswerModel(),
                answer_model_factory=lambda i: ExactAnswerModel(),
            )


class TestScheduling:
    def test_round_robin(self):
        crowd = make_crowd(3)
        order = [crowd.next_member() for _ in range(6)]
        assert order == ["u0", "u1", "u2", "u0", "u1", "u2"]

    def test_skips_exhausted_members(self):
        crowd = make_crowd(2, patience=1)
        crowd.ask_closed("u0", Rule(["a"], ["b"]))
        assert crowd.available_members() == ["u1"]
        assert crowd.next_member() == "u1"

    def test_all_exhausted_raises(self):
        crowd = make_crowd(1, patience=1)
        crowd.ask_closed("u0", Rule(["a"], ["b"]))
        with pytest.raises(CrowdExhaustedError):
            crowd.next_member()


class TestProtocolAndStats:
    def test_closed_answer(self):
        crowd = make_crowd()
        answer = crowd.ask_closed("u0", Rule(["a"], ["b"]))
        assert answer.stats.support == pytest.approx(0.5)
        assert crowd.stats.closed_questions == 1
        assert crowd.stats.per_member["u0"] == 1
        assert Rule(["a"], ["b"]) in crowd.stats.unique_rules_asked

    def test_open_answer_counted(self):
        crowd = make_crowd()
        crowd.ask_open("u0")
        assert crowd.stats.open_questions == 1
        assert crowd.stats.total_questions == 1

    def test_empty_open_counted(self):
        crowd = make_crowd()
        # Exclude everything the member could say.
        exhausted = False
        for _ in range(50):
            answer = crowd.ask_open("u0")
            if answer.is_empty:
                exhausted = True
                break
        assert exhausted
        assert crowd.stats.empty_open_answers >= 1

    def test_unknown_member_raises(self):
        crowd = make_crowd()
        with pytest.raises(KeyError):
            crowd.ask_closed("nobody", Rule(["a"], ["b"]))
