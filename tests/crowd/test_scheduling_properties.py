"""Property tests for crowd scheduling under departures and exclusion.

The dispatcher leans on two round-robin guarantees that must hold for
*any* pattern of member departures and busy-exclusion:

- :meth:`SimulatedCrowd.next_member` never returns a departed member,
  and never one the caller excluded;
- no available member is starved: while the available set is stable,
  a full round of calls reaches every available member at least once.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.transactions import TransactionDB
from repro.crowd import SimulatedCrowd, SimulatedMember
from repro.errors import CrowdExhaustedError


def make_crowd(patiences):
    members = [
        SimulatedMember(
            member_id=f"u{index}",
            db=TransactionDB([["tea", "honey"]]),
            patience=patience,
            seed=index,
        )
        for index, patience in enumerate(patiences)
    ]
    return SimulatedCrowd(members, seed=0)


# Each element drives one scheduling round: whether to actually ask the
# scheduled member (consuming patience, eventually forcing departures)
# and which member indices to mark busy for that call.
rounds = st.lists(
    st.tuples(st.booleans(), st.sets(st.integers(min_value=0, max_value=7))),
    min_size=1,
    max_size=60,
)
patiences = st.lists(
    st.one_of(st.none(), st.integers(min_value=1, max_value=5)),
    min_size=1,
    max_size=8,
)


class TestNextMemberProperties:
    @settings(max_examples=60, deadline=None)
    @given(patiences=patiences, rounds=rounds)
    def test_never_departed_never_excluded(self, patiences, rounds):
        from repro.core.rule import Rule

        crowd = make_crowd(patiences)
        rule = Rule(["tea"], ["honey"])  # content is irrelevant here
        for ask, busy_indices in rounds:
            busy = {f"u{i}" for i in busy_indices}
            available = set(crowd.available_members())
            if not available:
                break
            member_id = crowd.next_member(exclude=busy)
            if available <= busy:
                assert member_id is None
                continue
            assert member_id is not None
            assert member_id in available, "returned a departed member"
            assert member_id not in busy, "returned an excluded member"
            if ask:
                crowd.ask_closed(member_id, rule)

    @settings(max_examples=60, deadline=None)
    @given(patiences=patiences)
    def test_full_round_reaches_every_available_member(self, patiences):
        crowd = make_crowd(patiences)
        available = crowd.available_members()
        # No departures happen between calls (we never ask), so one
        # full round must name every available member: nobody starves.
        seen = {crowd.next_member() for _ in range(len(available))}
        assert seen == set(available)

    @settings(max_examples=30, deadline=None)
    @given(patiences=patiences, busy_index=st.integers(min_value=0, max_value=7))
    def test_exclusion_does_not_starve_the_others(self, patiences, busy_index):
        crowd = make_crowd(patiences)
        busy = {f"u{busy_index}"}
        expected = set(crowd.available_members()) - busy
        seen = set()
        # Two full rounds are enough for every non-busy member to come
        # up even though the shared cursor also advances past the busy
        # one.
        for _ in range(2 * max(1, len(expected))):
            member_id = crowd.next_member(exclude=busy)
            if member_id is not None:
                seen.add(member_id)
        assert seen == expected

    def test_everyone_left_still_raises(self):
        crowd = make_crowd([1])
        from repro.core.rule import Rule

        crowd.ask_closed("u0", Rule(["tea"], ["honey"]))
        try:
            crowd.next_member()
        except CrowdExhaustedError:
            pass
        else:  # pragma: no cover - the assertion documents the contract
            raise AssertionError("expected CrowdExhaustedError")
