"""Tests for stream-driven crowd members."""

import io

import pytest

from repro.core import Rule, RuleStats
from repro.crowd import (
    ClosedQuestion,
    OpenQuestion,
    QuestionRenderer,
    StreamMember,
    parse_open_answer,
    parse_stats,
)
from repro.errors import CrowdExhaustedError
from repro.synth import folk_remedies_domain


class TestParsing:
    def test_frequency_words(self):
        assert parse_stats("never") == RuleStats(0.0, 0.0)
        assert parse_stats("OFTEN") == RuleStats(0.75, 0.75)

    def test_two_numbers(self):
        assert parse_stats("0.2 0.6") == RuleStats(0.2, 0.6)

    def test_incoherent_numbers_rejected(self):
        # supp(A∪B) ≤ supp(A) forces confidence ≥ support; a member's
        # typo must surface as an error, not be silently rewritten.
        with pytest.raises(ValueError, match="incoherent"):
            parse_stats("0.7 0.3")

    def test_equal_numbers_accepted(self):
        assert parse_stats("0.5 0.5") == RuleStats(0.5, 0.5)

    def test_garbage_rejected(self):
        with pytest.raises(ValueError):
            parse_stats("dunno maybe")
        with pytest.raises(ValueError):
            parse_stats("0.2 0.6 0.9")

    def test_open_pass(self):
        assert parse_open_answer("pass") is None
        assert parse_open_answer("NONE") is None

    def test_open_rule_and_stats(self):
        rule, stats = parse_open_answer("cough -> tea ; sometimes")
        assert rule == Rule(["cough"], ["tea"])
        assert stats == RuleStats(0.5, 0.5)

    def test_open_numeric_stats(self):
        _, stats = parse_open_answer("a, b -> c ; 0.1 0.4")
        assert stats == RuleStats(0.1, 0.4)

    def test_open_missing_semicolon(self):
        with pytest.raises(ValueError, match="';'|pass"):
            parse_open_answer("cough -> tea often")

    def test_open_bad_rule(self):
        with pytest.raises(ValueError, match="bad rule"):
            parse_open_answer("cough tea ; often")


class TestStreamMember:
    def test_closed_answers_in_order(self):
        member = StreamMember("u1", ["often", "0.1 0.5"])
        q = ClosedQuestion(Rule(["cough"], ["tea"]))
        assert member.answer_closed(q).stats == RuleStats(0.75, 0.75)
        assert member.answer_closed(q).stats == RuleStats(0.1, 0.5)
        assert member.questions_answered == 2

    def test_comments_and_blanks_skipped(self):
        member = StreamMember("u1", ["# my answers", "", "rarely"])
        q = ClosedQuestion(Rule(["cough"], ["tea"]))
        assert member.answer_closed(q).stats.support == 0.25

    def test_exhausted_stream(self):
        member = StreamMember("u1", ["often"])
        q = ClosedQuestion(Rule(["cough"], ["tea"]))
        member.answer_closed(q)
        with pytest.raises(CrowdExhaustedError):
            member.answer_closed(q)
        assert not member.is_available

    def test_open_answer(self):
        member = StreamMember("u1", ["cough -> tea ; often"])
        answer = member.answer_open(OpenQuestion())
        assert answer.rule == Rule(["cough"], ["tea"])

    def test_open_pass(self):
        member = StreamMember("u1", ["pass"])
        assert member.answer_open(OpenQuestion()).is_empty

    def test_open_known_rule_treated_as_empty(self):
        member = StreamMember("u1", ["cough -> tea ; often"])
        answer = member.answer_open(
            OpenQuestion(), exclude={Rule(["cough"], ["tea"])}
        )
        assert answer.is_empty

    def test_echo_renders_questions(self):
        out = io.StringIO()
        renderer = QuestionRenderer(folk_remedies_domain())
        member = StreamMember("u1", ["often"], renderer=renderer, echo=out)
        member.answer_closed(ClosedQuestion(Rule(["cough"], ["honey"])))
        text = out.getvalue()
        assert "cough" in text and "honey" in text
        assert "never" in text  # the Likert scale line

    def test_tagged_lines_answer_their_kind(self):
        member = StreamMember(
            "u1",
            [
                "open: cough -> tea ; often",
                "closed: sometimes",
                "closed: never",
                "open: pass",
            ],
        )
        q = ClosedQuestion(Rule(["cough"], ["tea"]))
        # Closed question first: the open-tagged line is held, the
        # first closed-tagged line answers.
        assert member.answer_closed(q).stats.support == 0.5
        # Now the held open line serves the open question.
        answer = member.answer_open(OpenQuestion())
        assert answer.rule == Rule(["cough"], ["tea"])
        assert member.answer_closed(q).stats.support == 0.0
        assert member.answer_open(OpenQuestion()).is_empty

    def test_tagged_lines_consumed_in_order_within_kind(self):
        member = StreamMember(
            "u1", ["closed: never", "closed: often", "open: pass"]
        )
        q = ClosedQuestion(Rule(["cough"], ["tea"]))
        assert member.answer_closed(q).stats.support == 0.0
        assert member.answer_closed(q).stats.support == 0.75

    def test_mixed_tagged_and_untagged(self):
        member = StreamMember("u1", ["closed: often", "rarely"])
        q = ClosedQuestion(Rule(["cough"], ["tea"]))
        assert member.answer_closed(q).stats.support == 0.75
        assert member.answer_closed(q).stats.support == 0.25

    def test_file_like_stream(self, tmp_path):
        answers = tmp_path / "answers.txt"
        answers.write_text("# scripted member\noften\nsometimes\n")
        with open(answers) as handle:
            member = StreamMember("u1", handle)
            q = ClosedQuestion(Rule(["cough"], ["tea"]))
            assert member.answer_closed(q).stats.support == 0.75
            assert member.answer_closed(q).stats.support == 0.5
