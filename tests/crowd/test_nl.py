"""Tests for natural-language question rendering."""

from repro.core import Itemset, Rule
from repro.crowd import (
    ClosedQuestion,
    OpenQuestion,
    QuestionRenderer,
    culinary_renderer,
    folk_remedies_renderer,
    travel_renderer,
)
from repro.synth import culinary_domain, folk_remedies_domain, travel_domain


class TestTemplates:
    def test_folk_symptom_remedy(self):
        renderer = folk_remedies_renderer(folk_remedies_domain())
        text = renderer.render_closed(
            ClosedQuestion(Rule(["sore throat"], ["ginger tea"]))
        )
        assert text == "When you have a sore throat, how often do you use ginger tea?"

    def test_travel_place_activity(self):
        renderer = travel_renderer(travel_domain())
        text = renderer.render_closed(
            ClosedQuestion(Rule(["central park"], ["biking"]))
        )
        assert "visit central park" in text and "biking" in text

    def test_travel_place_restaurant(self):
        renderer = travel_renderer(travel_domain())
        text = renderer.render_closed(
            ClosedQuestion(Rule(["bronx zoo"], ["pine restaurant"]))
        )
        assert "eat at pine restaurant" in text

    def test_culinary_dish_drink(self):
        renderer = culinary_renderer(culinary_domain())
        text = renderer.render_closed(ClosedQuestion(Rule(["pizza"], ["beer"])))
        assert "When you eat pizza" in text and "drink beer" in text

    def test_multi_item_join(self):
        renderer = folk_remedies_renderer(folk_remedies_domain())
        text = renderer.render_closed(
            ClosedQuestion(Rule(["cough"], ["honey", "lemon"]))
        )
        assert "honey and lemon" in text


class TestFallbacks:
    def test_mixed_categories_use_generic(self):
        renderer = folk_remedies_renderer(folk_remedies_domain())
        # antecedent mixes symptom and remedy → generic phrasing
        text = renderer.render_closed(
            ClosedQuestion(Rule(["cough", "honey"], ["lemon"]))
        )
        assert "When your day includes" in text

    def test_itemset_rule_phrasing(self):
        renderer = QuestionRenderer(folk_remedies_domain())
        text = renderer.render_closed(ClosedQuestion(Rule.itemset_rule(["honey"])))
        assert text == "How often does your day include honey?"

    def test_no_templates_at_all(self):
        renderer = QuestionRenderer(folk_remedies_domain())
        text = renderer.render_closed(
            ClosedQuestion(Rule(["sore throat"], ["ginger tea"]))
        )
        assert "how often does it also include" in text


class TestOpenRendering:
    def test_plain_open(self):
        renderer = QuestionRenderer(folk_remedies_domain())
        assert "Tell us" in renderer.render_open(OpenQuestion())

    def test_contextual_open(self):
        renderer = QuestionRenderer(folk_remedies_domain())
        text = renderer.render_open(OpenQuestion(Itemset(["headache"])))
        assert "headache" in text

    def test_likert_scale_line(self):
        renderer = QuestionRenderer(folk_remedies_domain())
        line = renderer.render_likert_scale()
        assert line.startswith("never") and line.endswith("very often")
