"""Tests for the answer models, including coherence invariants."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import RuleStats
from repro.crowd import (
    LIKERT5,
    ComposedAnswerModel,
    ExactAnswerModel,
    ForgetfulAnswerModel,
    LikertAnswerModel,
    NoisyAnswerModel,
    SpammerAnswerModel,
    standard_answer_model,
)


def stats_strategy():
    return st.tuples(
        st.floats(0.0, 1.0, allow_nan=False), st.floats(0.0, 1.0, allow_nan=False)
    ).map(lambda sc: RuleStats(min(sc), max(sc)))


ALL_MODELS = [
    ExactAnswerModel(),
    NoisyAnswerModel(0.1),
    LikertAnswerModel(),
    ForgetfulAnswerModel(0.8),
    ComposedAnswerModel([NoisyAnswerModel(0.05), LikertAnswerModel()]),
    SpammerAnswerModel(),
]


class TestCoherence:
    @settings(max_examples=40, deadline=None)
    @given(stats_strategy(), st.integers(0, 2**31 - 1))
    @pytest.mark.parametrize("model", ALL_MODELS, ids=lambda m: type(m).__name__)
    def test_reports_are_valid_stats(self, model, stats, seed):
        rng = np.random.default_rng(seed)
        reported = model.report(stats, rng)
        assert 0.0 <= reported.support <= reported.confidence <= 1.0


class TestExact:
    def test_identity(self, rng):
        s = RuleStats(0.2, 0.6)
        assert ExactAnswerModel().report(s, rng) == s


class TestNoisy:
    def test_zero_sigma_identity(self, rng):
        s = RuleStats(0.2, 0.6)
        assert NoisyAnswerModel(0.0).report(s, rng) == s

    def test_noise_is_centred(self, rng):
        model = NoisyAnswerModel(0.1)
        truth = RuleStats(0.5, 0.7)
        supports = [model.report(truth, rng).support for _ in range(500)]
        assert np.mean(supports) == pytest.approx(0.5, abs=0.03)

    def test_negative_sigma_rejected(self):
        with pytest.raises(Exception):
            NoisyAnswerModel(-0.1)


class TestLikert:
    def test_snaps_to_grid(self, rng):
        model = LikertAnswerModel()
        reported = model.report(RuleStats(0.23, 0.61), rng)
        assert reported.support in LIKERT5
        assert reported.confidence in LIKERT5

    def test_exact_grid_values_unchanged(self, rng):
        model = LikertAnswerModel()
        s = RuleStats(0.25, 0.75)
        assert model.report(s, rng) == s

    def test_custom_grid(self, rng):
        model = LikertAnswerModel(grid=(0.0, 0.5, 1.0))
        assert model.report(RuleStats(0.3, 0.3), rng).support == 0.5

    def test_tiny_grid_rejected(self):
        with pytest.raises(ValueError):
            LikertAnswerModel(grid=(0.5,))


class TestForgetful:
    def test_underreports_support_on_average(self, rng):
        model = ForgetfulAnswerModel(recall=0.7)
        truth = RuleStats(0.5, 0.8)
        supports = [model.report(truth, rng).support for _ in range(500)]
        assert np.mean(supports) == pytest.approx(0.35, abs=0.05)

    def test_perfect_recall_identity(self, rng):
        s = RuleStats(0.4, 0.6)
        assert ForgetfulAnswerModel(recall=1.0).report(s, rng) == s

    def test_invalid_recall_rejected(self):
        with pytest.raises(ValueError):
            ForgetfulAnswerModel(recall=0.0)


class TestSpammer:
    def test_ignores_truth(self, rng):
        model = SpammerAnswerModel()
        answers = {
            model.report(RuleStats(0.9, 0.9), rng).support for _ in range(50)
        }
        assert len(answers) > 10  # essentially random


class TestComposed:
    def test_applies_in_order(self, rng):
        # Forget (scales support), then Likert (snaps): result on grid.
        model = ComposedAnswerModel(
            [ForgetfulAnswerModel(0.5, concentration=10_000), LikertAnswerModel()]
        )
        reported = model.report(RuleStats(0.5, 1.0), rng)
        assert reported.support == 0.25

    def test_empty_composition_rejected(self):
        with pytest.raises(ValueError):
            ComposedAnswerModel([])


class TestStandard:
    def test_default_is_noise_plus_likert(self):
        model = standard_answer_model()
        assert isinstance(model, ComposedAnswerModel)

    def test_likert_disabled(self):
        model = standard_answer_model(likert=False)
        assert isinstance(model, NoisyAnswerModel)
