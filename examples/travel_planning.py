"""Travel planning: the "Ann plans a vacation" scenario.

Ann wants popular combinations of activities at attractions and nearby
restaurants. This example shows the *query-driven* flavour of crowd
mining: Ann's question seeds candidate rules (place → activity and
place → restaurant pairs built from the vocabulary), the open questions
fill in combinations nobody thought to ask about, and the final answer
is the concise set of maximal significant rules — plus a transcript of
what the crowd was actually asked, rendered through the natural-
language template layer.

Run:  python examples/travel_planning.py
"""

from repro import (
    Rule,
    SimulatedCrowd,
    Thresholds,
    build_population,
    compute_ground_truth,
    mine_crowd,
    standard_answer_model,
    travel_model,
)
from repro.crowd import travel_renderer
from repro.crowd.questions import ClosedQuestion
from repro.miner import QuestionKind
from repro.synth.domains import ACTIVITY, PLACE, RESTAURANT


def seed_rules_from_query(domain) -> list[Rule]:
    """Ann's question as candidate rules: place → activity/restaurant."""
    seeds = []
    for place in domain.items_in_category(PLACE):
        for activity in domain.items_in_category(ACTIVITY):
            seeds.append(Rule([place], [activity]))
        for restaurant in domain.items_in_category(RESTAURANT):
            seeds.append(Rule([place], [restaurant]))
    return seeds


def main() -> None:
    model = travel_model(seed=11)
    population = build_population(
        model, n_members=60, transactions_per_member=150, seed=12
    )
    crowd = SimulatedCrowd.from_population(
        population, answer_model=standard_answer_model(), seed=13
    )

    thresholds = Thresholds(support=0.08, confidence=0.45)
    seeds = seed_rules_from_query(model.domain)
    print(f"query seeded {len(seeds)} candidate rules")

    # Contextual ("specialization") questions pay off here: travel
    # habits have refinements — renting the bikes, a tip attached to an
    # activity — so a quarter of open questions probe around confirmed
    # rules ("you visit Central Park and bike: what else?").
    result = mine_crowd(
        crowd,
        thresholds,
        budget=2_000,
        seed_rules=seeds,
        seed=14,
        contextual_open_fraction=0.25,
    )

    renderer = travel_renderer(model.domain)
    print("\n=== a few questions the crowd actually saw ===")
    shown = 0
    for event in result.log:
        if event.kind is QuestionKind.CLOSED and shown < 5:
            print(f"  [{event.member_id}] {renderer.render_closed(ClosedQuestion(event.rule))}")
            shown += 1
    print(f"  ... plus {result.questions_asked - shown} more "
          f"({result.open_questions} open)")

    print("\n=== recommendations for Ann (maximal significant rules) ===")
    for rule, stats in sorted(
        result.maximal_significant.items(), key=lambda kv: -kv[1].support
    ):
        print(f"  {rule}  {stats}")

    truth = compute_ground_truth(population, thresholds)
    mined = set(result.significant)
    tp = len(mined & truth.significant)
    print(
        f"\nground truth check: {tp}/{len(mined)} reported rules are truly "
        f"significant; {tp}/{len(truth.significant)} of the truth was found"
    )


if __name__ == "__main__":
    main()
