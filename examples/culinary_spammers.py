"""Culinary crowd with spammers: robust aggregation in action.

A fifth of this crowd answers uniformly at random (classic crowdsourcing
spam). The example contrasts three defences from the estimation layer:

1. plain mean aggregation (no defence),
2. trimmed-mean aggregation (statistical robustness),
3. consistency screening — exploiting the crowd-mining-specific fact
   that reported support must be antitone along the rule lattice, which
   honest members respect and spammers cannot.

Run:  python examples/culinary_spammers.py
"""

from repro import (
    SimulatedCrowd,
    Thresholds,
    build_population,
    compute_ground_truth,
    culinary_model,
    mine_crowd,
    standard_answer_model,
)
from repro.crowd import SpammerAnswerModel
from repro.estimation import ConsistencyChecker, TrimmedMeanAggregator
from repro.miner import QuestionKind

SPAMMER_EVERY = 5  # members 0, 5, 10, ... are spammers


def make_crowd(population, seed):
    """A crowd where every fifth member ignores the questions."""
    honest = standard_answer_model()

    def model_for(index: int):
        return SpammerAnswerModel() if index % SPAMMER_EVERY == 0 else honest

    return SimulatedCrowd.from_population(
        population, answer_model_factory=model_for, seed=seed
    )


def score(result, truth):
    mined = set(result.significant)
    tp = len(mined & truth.significant)
    precision = tp / len(mined) if mined else 1.0
    recall = tp / len(truth.significant) if truth.significant else 1.0
    return precision, recall


def main() -> None:
    model = culinary_model(seed=21)
    population = build_population(
        model, n_members=50, transactions_per_member=150, seed=22
    )
    thresholds = Thresholds(support=0.08, confidence=0.45)
    truth = compute_ground_truth(population, thresholds)
    print(f"ground truth: {len(truth.significant)} significant rules; "
          f"{len(population) // SPAMMER_EVERY} of {len(population)} members are spammers")

    print("\n=== plain mean aggregation ===")
    crowd = make_crowd(population, seed=23)
    plain = mine_crowd(crowd, thresholds, budget=1_500, seed=24)
    p, r = score(plain, truth)
    print(f"precision={p:.2f} recall={r:.2f} "
          f"({len(plain.significant)} rules reported)")

    print("\n=== trimmed-mean aggregation (trim 20%) ===")
    crowd = make_crowd(population, seed=23)
    trimmed = mine_crowd(
        crowd,
        thresholds,
        budget=1_500,
        seed=24,
        aggregator=TrimmedMeanAggregator(trim=0.2),
    )
    p, r = score(trimmed, truth)
    print(f"precision={p:.2f} recall={r:.2f} "
          f"({len(trimmed.significant)} rules reported)")

    print("\n=== consistency screening (who are the spammers?) ===")
    checker = ConsistencyChecker()
    for event in plain.log:
        if event.kind is QuestionKind.CLOSED and event.stats is not None:
            checker.record(event.member_id, event.rule, event.stats)
    flagged = checker.flagged(threshold=0.8)
    actual = {m.member_id for i, m in enumerate(population) if i % SPAMMER_EVERY == 0}
    caught = len(set(flagged) & actual)
    print(f"flagged {len(flagged)} members; {caught}/{len(actual)} are actual spammers")
    for member_id in flagged[:6]:
        mark = "SPAMMER" if member_id in actual else "honest"
        print(f"  {member_id}: trust={checker.trust(member_id):.2f} ({mark})")


if __name__ == "__main__":
    main()
