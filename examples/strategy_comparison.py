"""Strategy comparison on one shared world (a mini experiment E1).

Runs the adaptive CrowdMiner strategy against the random and
round-robin baselines on the *same* population with the same budget,
and prints quality-vs-questions curves. A condensed, single-world
version of the full E1 benchmark (``benchmarks/bench_e1_strategies.py``).

Run:  python examples/strategy_comparison.py
"""

from repro import SimulatedCrowd, Thresholds, build_population, standard_answer_model
from repro.eval import format_rows, score_report
from repro.miner import CrowdMiner, CrowdMinerConfig, compute_ground_truth, make_strategy
from repro.synth import random_domain, random_habit_model

CHECKPOINTS = (100, 250, 500, 750, 1_000)


def run_one(strategy_name, population, truth, thresholds):
    crowd = SimulatedCrowd.from_population(
        population, answer_model=standard_answer_model(), seed=33
    )
    miner = CrowdMiner(
        crowd,
        CrowdMinerConfig(
            thresholds=thresholds,
            budget=max(CHECKPOINTS),
            strategy=make_strategy(strategy_name),
            seed=34,
        ),
    )
    points = []
    for checkpoint in CHECKPOINTS:
        while miner.questions_asked < checkpoint and not miner.is_done:
            if miner.step() is None:
                break
        reported = miner.state.significant_rules(mode="point")
        points.append(score_report(reported, truth, checkpoint))
    return points


def main() -> None:
    domain = random_domain(100, seed=31)
    model = random_habit_model(domain, n_patterns=15, seed=31)
    population = build_population(
        model, n_members=40, transactions_per_member=200, seed=32
    )
    thresholds = Thresholds(0.10, 0.5)
    truth = compute_ground_truth(population, thresholds)
    print(f"world: {len(domain)} items, {len(truth.significant)} truly significant rules\n")

    rows = []
    for name in ("crowdminer", "roundrobin", "random"):
        points = run_one(name, population, truth, thresholds)
        for point in points:
            rows.append(
                (name, point.questions, f"{point.precision:.3f}",
                 f"{point.recall:.3f}", f"{point.f1:.3f}")
            )
    print(format_rows(("strategy", "questions", "precision", "recall", "F1"), rows))


if __name__ == "__main__":
    main()
