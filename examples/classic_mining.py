"""Classic association-rule mining on a synthetic market-basket DB.

The library's classic substrate is a complete miner in its own right.
This example generates a Quest-style retail database, mines frequent
itemsets with both Apriori and FP-Growth (verifying they agree),
derives confident rules, and shows the condensed maximal/closed
representations — then partitions the same database into personal
databases to build a "crowd from real data" (the E6 setup).

Run:  python examples/classic_mining.py
"""

from repro import SimulatedCrowd, Thresholds, mine_crowd, partition_global_db, standard_answer_model
from repro.classic import (
    apriori_frequent_itemsets,
    closed_itemsets,
    fpgrowth_frequent_itemsets,
    maximal_itemsets,
    rules_from_itemsets,
)
from repro.miner import compute_ground_truth
from repro.synth import QuestConfig, QuestGenerator

MIN_SUPPORT = 0.05
MIN_CONFIDENCE = 0.6


def main() -> None:
    generator = QuestGenerator(
        QuestConfig(n_items=100, n_transactions=4_000, n_patterns=25), seed=41
    )
    db = generator.generate()
    print(f"generated {len(db)} transactions over {len(db.items)} active items")

    apriori = apriori_frequent_itemsets(db, MIN_SUPPORT, max_size=4)
    fpgrowth = fpgrowth_frequent_itemsets(db, MIN_SUPPORT, max_size=4)
    assert set(apriori) == set(fpgrowth), "miners disagree!"
    print(f"frequent itemsets @ support {MIN_SUPPORT}: {len(fpgrowth)}")
    print(f"  maximal: {len(maximal_itemsets(fpgrowth))}  "
          f"closed: {len(closed_itemsets(fpgrowth))}")

    rules = rules_from_itemsets(fpgrowth, MIN_CONFIDENCE)
    print(f"confident rules @ confidence {MIN_CONFIDENCE}: {len(rules)}")
    top = sorted(rules.items(), key=lambda kv: -kv[1].support)[:5]
    for rule, stats in top:
        print(f"  {rule}  {stats}")

    # Crowd-from-real-data: split the global DB into personal DBs and
    # mine it back through the crowd interface. Quest baskets are far
    # denser than habit data, so the interesting query uses high
    # thresholds ("what does almost everyone do almost always?") —
    # lower ones make thousands of rules significant.
    population = partition_global_db(
        db, generator.domain, n_members=40, transactions_per_member=100,
        heterogeneity=1.0, seed=42,
    )
    thresholds = Thresholds(0.25, 0.75)
    truth = compute_ground_truth(population, thresholds, max_body_size=3)
    crowd = SimulatedCrowd.from_population(
        population, answer_model=standard_answer_model(), seed=43
    )
    result = mine_crowd(crowd, thresholds, budget=1_500, seed=44)
    mined = set(result.significant)
    tp = len(mined & truth.significant)
    print(f"\ncrowd-from-real-data: truth={len(truth.significant)} "
          f"mined={len(mined)} (precision {tp / max(1, len(mined)):.2f}, "
          f"recall {tp / max(1, len(truth.significant)):.2f})")


if __name__ == "__main__":
    main()
