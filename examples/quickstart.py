"""Quickstart: mine folk-remedy habits from a simulated crowd.

Builds the folk-medicine population (the paper's motivating domain),
wraps it as an answerable crowd, runs the CrowdMiner with a modest
question budget, and prints the discovered significant rules next to
the exact ground truth so you can see what the miner got right.

Run:  python examples/quickstart.py
"""

from repro import (
    SimulatedCrowd,
    Thresholds,
    build_population,
    compute_ground_truth,
    folk_remedies_model,
    mine_crowd,
    standard_answer_model,
)


def main() -> None:
    # 1. The world: a latent habit model and a sampled population.
    #    (In the real system this is the actual crowd; here we simulate
    #    it so we can score the result exactly.)
    model = folk_remedies_model(seed=1)
    population = build_population(
        model, n_members=40, transactions_per_member=200, seed=2
    )

    # 2. The crowd interface: members answer through a human-like
    #    pipeline (perception noise, then a five-point frequency scale).
    crowd = SimulatedCrowd.from_population(
        population, answer_model=standard_answer_model(), seed=3
    )

    # 3. Mine: "find habits the average person has at least 10% of the
    #    time, with at least 50% reliability".
    thresholds = Thresholds(support=0.10, confidence=0.50)
    result = mine_crowd(crowd, thresholds, budget=1_500, seed=4)

    print("=== mining session ===")
    print(result.summary())

    # 4. Score against the exact oracle (simulation-only luxury).
    truth = compute_ground_truth(population, thresholds)
    mined = set(result.significant)
    true_positives = mined & truth.significant
    precision = len(true_positives) / len(mined) if mined else 1.0
    recall = len(true_positives) / len(truth.significant)
    print("\n=== against ground truth ===")
    print(f"true significant rules: {len(truth.significant)}")
    print(f"precision: {precision:.2f}   recall: {recall:.2f}")

    missed = truth.significant - mined
    if missed:
        print(f"missed ({len(missed)}):")
        for rule in sorted(missed, key=lambda r: r.sort_key())[:5]:
            print(f"  {rule}  true={truth.stats[rule]}")


if __name__ == "__main__":
    main()
