"""A "live" crowd driven by scripted answer streams.

Everything else in this repository simulates members from materialized
personal databases. This example shows the deployment path instead:
members whose answers arrive over a line-oriented text protocol
(:class:`repro.crowd.StreamMember`) — here scripted answer lists, in a
real deployment stdin, files or sockets. The exact same CrowdMiner
drives them, and the transcript shows the rendered natural-language
questions a human would see.

Scripts use the tagged protocol: ``open:`` lines are consumed by open
questions (volunteer a habit / pass), ``closed:`` lines by closed
questions (frequency words), so the script does not need to predict how
the miner interleaves question types.

Run:  python examples/scripted_live_crowd.py
"""

import io

from repro import Thresholds
from repro.crowd import SimulatedCrowd, StreamMember, folk_remedies_renderer
from repro.miner import CrowdMiner, CrowdMinerConfig, analyze_result
from repro.synth import folk_remedies_domain

CLOSED_POOL = [
    "closed: often",
    "closed: sometimes",
    "closed: often",
    "closed: rarely",
    "closed: never",
    "closed: sometimes",
    "closed: often",
    "closed: very often",
    "closed: never",
    "closed: 0.3 0.8",
    "closed: sometimes",
    "closed: never",
]

SCRIPTS = {
    "alice": ["open: sore throat -> ginger tea ; often", "open: pass"] + CLOSED_POOL,
    "bob": ["open: headache -> coffee ; very often", "open: pass"] + CLOSED_POOL,
    "carol": ["open: insomnia -> chamomile tea ; sometimes", "open: pass"] + CLOSED_POOL,
    "dave": ["open: sore throat -> ginger tea ; often", "open: pass"] + CLOSED_POOL,
}


def main() -> None:
    domain = folk_remedies_domain()
    renderer = folk_remedies_renderer(domain)
    transcript = io.StringIO()
    members = [
        StreamMember(name, script, renderer=renderer, echo=transcript)
        for name, script in SCRIPTS.items()
    ]
    crowd = SimulatedCrowd(members, seed=1)

    miner = CrowdMiner(
        crowd,
        CrowdMinerConfig(
            thresholds=Thresholds(0.25, 0.5),
            budget=sum(len(s) for s in SCRIPTS.values()),
            min_samples=3,
            seed=2,
        ),
    )
    result = miner.run()

    print("=== what the members were asked (transcript) ===")
    for line in transcript.getvalue().splitlines()[:12]:
        print(" ", line)
    print("  ...")

    print("\n=== mined from four people ===")
    print(result.summary())

    print("\n=== session analysis ===")
    print(analyze_result(result).summary())


if __name__ == "__main__":
    main()
