"""Answer caching: pay for questions once, re-mine for free.

Crowd answers are threshold-independent facts, so the paper caches them
and re-evaluates queries at new thresholds without going back to the
crowd. This example:

1. mines the folk-remedies crowd once at permissive thresholds,
   recording every answer in an :class:`repro.miner.AnswerCache`;
2. re-evaluates the query at three stricter threshold settings purely
   from the cache — zero additional questions;
3. starts a *second* mining session against the same crowd with the
   warm cache and shows how many questions the cache absorbs;
4. prints the budget forecast and a "why?" explanation for one rule —
   the operator-facing tooling around the same machinery.

Run:  python examples/threshold_replay.py
"""

from repro import Thresholds, build_population, folk_remedies_model, standard_answer_model
from repro.crowd import SimulatedCrowd
from repro.miner import (
    AnswerCache,
    CachingCrowd,
    CrowdMiner,
    CrowdMinerConfig,
    explain_rule,
    forecast_budget,
    reevaluate,
)


def main() -> None:
    model = folk_remedies_model(seed=1)
    population = build_population(model, n_members=30, transactions_per_member=150, seed=2)
    cache = AnswerCache()

    # --- 1. the paid-for session -------------------------------------------
    inner = SimulatedCrowd.from_population(
        population, answer_model=standard_answer_model(), seed=3
    )
    crowd = CachingCrowd(inner, cache)
    base_thresholds = Thresholds(0.08, 0.40)
    miner = CrowdMiner(
        crowd, CrowdMinerConfig(thresholds=base_thresholds, budget=1_200, seed=4)
    )
    result = miner.run()
    print(
        f"session 1 @ (0.08, 0.40): {result.questions_asked} questions, "
        f"{len(result.significant)} significant rules, cache now holds "
        f"{len(cache)} answers"
    )

    # --- 2. re-thresholding is free ------------------------------------------
    print("\nre-evaluating from cache (0 questions):")
    for support, confidence in ((0.10, 0.50), (0.15, 0.60), (0.20, 0.70)):
        significant = reevaluate(cache, Thresholds(support, confidence))
        print(f"  thresholds ({support:.2f}, {confidence:.2f}): "
              f"{len(significant)} significant rules")

    # --- 3. a second session rides the cache ----------------------------------
    inner2 = SimulatedCrowd.from_population(
        population, answer_model=standard_answer_model(), seed=5
    )
    crowd2 = CachingCrowd(inner2, cache)
    miner2 = CrowdMiner(
        crowd2,
        CrowdMinerConfig(
            thresholds=Thresholds(0.10, 0.50),
            budget=1_200,
            seed=6,
            seed_rules=tuple(cache.known_rules()),
        ),
    )
    miner2.run()
    print(
        f"\nsession 2 @ (0.10, 0.50): cache hit rate "
        f"{crowd2.cache_stats.hit_rate:.0%} — only "
        f"{inner2.stats.total_questions} questions reached the crowd"
    )

    # --- 4. operator tooling ------------------------------------------------------
    print("\nbudget forecast for what session 2 left unresolved:")
    print(" ", forecast_budget(miner2.state, crowd_size=len(population)).summary())

    reported = sorted(miner2.state.significant_rules(), key=lambda r: r.sort_key())
    if reported:
        print("\nwhy is the first reported rule in the answer?")
        for line in explain_rule(miner2.state, reported[0]).splitlines():
            print("  " + line)


if __name__ == "__main__":
    main()
