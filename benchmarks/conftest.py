"""Shared benchmark configuration.

Benchmarks run the canonical experiments (DESIGN.md §4) at the scale
given by the ``REPRO_BENCH_SCALE`` environment variable: ``full`` (the
default — headline curves, minutes of wall clock) or ``smoke``
(seconds, for CI sanity). Each benchmark prints the figure/table it
reproduces; pytest-benchmark records the wall time of one full run.
"""

from __future__ import annotations

import os

import pytest


@pytest.fixture(scope="session")
def scale() -> str:
    value = os.environ.get("REPRO_BENCH_SCALE", "full")
    if value not in ("full", "smoke"):
        raise ValueError(f"REPRO_BENCH_SCALE must be 'full' or 'smoke', got {value!r}")
    return value


def run_once(benchmark, func):
    """Run ``func`` exactly once under pytest-benchmark timing.

    The experiments are deterministic and expensive; statistical
    repetition lives *inside* them (seeded repetitions), so one timed
    round is the right benchmark shape.
    """
    return benchmark.pedantic(func, rounds=1, iterations=1, warmup_rounds=0)
