"""E1 — strategy comparison (reconstructed "quality vs #questions" figure).

Reproduces the paper's central algorithmic claim: adaptive, error-driven
question selection (CrowdMiner) reaches any quality level with fewer
questions than random or round-robin selection, with the largest gap
early in the session.
"""

from repro.eval import e1_strategies, format_experiment, run_variants

from conftest import run_once


def test_e1_strategy_comparison(benchmark, scale):
    base, variants = e1_strategies(scale)

    def run():
        return run_variants(base, variants)

    results = run_once(benchmark, run)
    print()
    print(format_experiment(f"E1: strategy comparison ({scale})", results))

    # The reproduction claim matches the papers' own phrasing: the
    # adaptive strategy "starts returning answers much faster", and "as
    # a higher % is found, the gap becomes smaller". So we assert the
    # early-budget dominance and the overall anytime quality (mean F1
    # across checkpoints), not the saturated endpoint where all
    # strategies converge.
    def f1s(label):
        return [p.f1 for p in results[label].curve.points]

    early_index = 1  # the second checkpoint: the paper's "first answers" regime
    for baseline in ("roundrobin", "random"):
        assert f1s("crowdminer")[early_index] >= f1s(baseline)[early_index]
        auc_miner = sum(f1s("crowdminer")) / len(f1s("crowdminer"))
        auc_base = sum(f1s(baseline)) / len(f1s(baseline))
        assert auc_miner >= auc_base - 0.02
