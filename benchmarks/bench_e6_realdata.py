"""E6 — crowds simulated from "real" transaction data (table).

The paper complements its latent-model experiments with crowds derived
from real datasets. We reproduce the mechanism: a Quest-style global
market-basket database is partitioned into per-member personal
databases at several taste-heterogeneity levels, and the miner runs
against the resulting crowd. Rows report ground-truth size, final
precision/recall and the question cost of reaching F1 ≥ 0.5.
"""

from repro.crowd import SimulatedCrowd, standard_answer_model
from repro.crowd.open_behavior import OpenAnswerPolicy
from repro.estimation import Thresholds
from repro.eval import QualityCurve, format_rows, score_report
from repro.miner import CrowdMiner, CrowdMinerConfig, compute_ground_truth
from repro.synth import QuestConfig, QuestGenerator, partition_global_db

from conftest import run_once

SETTINGS = {
    "full": dict(
        n_items=100, n_transactions=4_000, n_patterns=25, n_members=40,
        per_member=100, budget=2_000,
        checkpoints=(250, 500, 1_000, 1_500, 2_000),
    ),
    "smoke": dict(
        n_items=60, n_transactions=1_000, n_patterns=12, n_members=12,
        per_member=60, budget=400, checkpoints=(100, 200, 400),
    ),
}

THRESHOLDS = Thresholds(0.25, 0.75)
HETEROGENEITY_LEVELS = (0.0, 0.5, 2.0, 5.0)


def run_level(heterogeneity, cfg, db, domain):
    population = partition_global_db(
        db, domain, cfg["n_members"],
        transactions_per_member=cfg["per_member"],
        heterogeneity=heterogeneity, seed=42,
    )
    truth = compute_ground_truth(population, THRESHOLDS, max_body_size=3)
    crowd = SimulatedCrowd.from_population(
        population,
        answer_model=standard_answer_model(),
        open_policy=OpenAnswerPolicy(max_body_size=3),
        seed=43,
    )
    miner = CrowdMiner(
        crowd,
        CrowdMinerConfig(thresholds=THRESHOLDS, budget=cfg["budget"], seed=44),
    )
    points = []
    for checkpoint in cfg["checkpoints"]:
        while miner.questions_asked < checkpoint and not miner.is_done:
            if miner.step() is None:
                break
        reported = miner.state.significant_rules(mode="point")
        points.append(score_report(reported, truth, checkpoint))
    curve = QualityCurve(label=f"het_{heterogeneity}", points=tuple(points))
    return truth, curve


def test_e6_realdata_crowds(benchmark, scale):
    cfg = SETTINGS[scale]
    generator = QuestGenerator(
        QuestConfig(
            n_items=cfg["n_items"],
            n_transactions=cfg["n_transactions"],
            n_patterns=cfg["n_patterns"],
        ),
        seed=41,
    )
    db = generator.generate()

    def run():
        return {
            het: run_level(het, cfg, db, generator.domain)
            for het in HETEROGENEITY_LEVELS
        }

    outcomes = run_once(benchmark, run)

    rows = []
    for het, (truth, curve) in outcomes.items():
        final = curve.final()
        q50 = curve.questions_to_f1(0.5)
        rows.append(
            (
                f"{het:.1f}",
                len(truth),
                f"{final.precision:.3f}",
                f"{final.recall:.3f}",
                f"{final.f1:.3f}",
                q50 if q50 is not None else "—",
            )
        )
    print()
    print(f"=== E6: crowds from partitioned Quest data ({scale}) ===")
    print(
        format_rows(
            ("heterogeneity", "truth", "final_P", "final_R", "final_F1", "q_to_F1>=0.5"),
            rows,
        )
    )

    # Shape claims: mining works at every heterogeneity level, and
    # precision stays high (the miner does not hallucinate structure).
    for _, (truth, curve) in outcomes.items():
        assert len(truth) > 0
        assert curve.final().precision >= 0.5
