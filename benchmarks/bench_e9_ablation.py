"""E9 — ablation of the miner's design choices (table).

Each variant removes one component called out in DESIGN.md §5:
covariance-aware significance, lattice pruning, confirmation-triggered
expansion, and eager open discovery (the closed-only-lazy variant only
opens when idle). The full configuration should not be dominated by
any ablation.
"""

from repro.eval import e9_ablation, format_experiment, run_variants

from conftest import run_once


def test_e9_ablation(benchmark, scale):
    base, variants = e9_ablation(scale)

    def run():
        return run_variants(base, variants)

    results = run_once(benchmark, run)
    print()
    print(format_experiment(f"E9: ablation ({scale})", results))

    final = {label: r.curve.final() for label, r in results.items()}
    # The full system must be competitive with the best variant. (At
    # smoke scale the tiny budget amplifies variant noise — notably the
    # closed-only-lazy policy, which spends nothing on eager discovery
    # and therefore shines when budgets are far below convergence.)
    best = max(p.f1 for p in final.values())
    slack = 0.15 if scale == "full" else 0.3
    assert final["full"].f1 >= best - slack
