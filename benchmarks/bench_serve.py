"""Serve — concurrent-session load benchmark (the serve-smoke floor).

Load test for the asyncio serving surface (``docs/serving.md``): one
:class:`~repro.serve.app.MinerServer` on an ephemeral port, ``N``
concurrent sessions, each driven by its own simulated client over real
HTTP. Clients pause between questions on a lognormal think-time clock —
the shape crowd latency actually has — so the server sees overlapping,
irregular request arrivals rather than a tight loop.

Three things are measured and asserted:

- aggregate throughput (questions answered per second of wall time)
  against a CI floor set far below measured performance — it guards
  against an accidental per-request O(sessions) or O(KB) regression in
  the routing/ingest path, not the constant;
- client-side p99 turnaround for one fetch-then-answer exchange (the
  latency a worker's browser would feel), bounded loosely;
- byte-identical fingerprints: every session, run under full
  concurrent load, must still reproduce its own synchronous reference
  transcript — the differential guarantee does not erode when the
  server is busy.

``REPRO_BENCH_SCALE=smoke`` runs 8 sessions in a few seconds (the CI
serve-smoke job); ``full`` widens to 16 sessions at larger budgets.
"""

import asyncio
import math
import random
import time

from repro.eval import format_rows
from repro.serve import (
    JsonClient,
    MinerServer,
    Scenario,
    SessionManager,
    SimulatedWorkerPool,
    run_sync,
)

from conftest import run_once

SETTINGS = {
    "full": dict(
        sessions=16,
        n_members=10,
        transactions_per_member=60,
        budget=100,
        think_median=0.002,
        think_sigma=1.0,
        floor_qps=60.0,
        p99_ceiling=1.0,
    ),
    "smoke": dict(
        sessions=8,
        n_members=6,
        transactions_per_member=30,
        budget=40,
        think_median=0.001,
        think_sigma=1.0,
        floor_qps=40.0,
        p99_ceiling=1.0,
    ),
}


def _scenarios(cfg):
    """One independently-seeded world per concurrent session."""
    return [
        Scenario(
            n_members=cfg["n_members"],
            transactions_per_member=cfg["transactions_per_member"],
            budget=cfg["budget"],
            model_seed=100 + i,
            crowd_seed=200 + i,
            miner_seed=300 + i,
        )
        for i in range(cfg["sessions"])
    ]


async def _drive_client(port, session_id, scenario, cfg, seed):
    """One simulated worker crowd answering its session over HTTP.

    Returns (questions answered, per-exchange turnaround latencies).
    The think-time sleep sits *outside* the timed window: the latency
    recorded is the server's fetch+ingest round trip, the part a
    regression would move.
    """
    rng = random.Random(seed)
    mu = math.log(cfg["think_median"])
    pool = SimulatedWorkerPool(scenario.build_crowd())
    client = JsonClient("127.0.0.1", port)
    latencies = []
    try:
        _status, created = await client.request(
            "POST",
            "/v1/sessions",
            scenario.session_spec(pool.crowd.member_ids, id=session_id),
        )
        assert created.get("session") == session_id, created
        while True:
            await asyncio.sleep(rng.lognormvariate(mu, cfg["think_sigma"]))
            started = time.perf_counter()
            _status, doc = await client.request(
                "POST", f"/v1/sessions/{session_id}/question"
            )
            if doc["status"] == "done":
                break
            if doc["status"] in ("wait", "draining"):
                continue
            question = doc["question"]
            await client.request(
                "POST",
                f"/v1/sessions/{session_id}/answer",
                {
                    "question_id": question["question_id"],
                    "answer": pool.answer(question),
                },
            )
            latencies.append(time.perf_counter() - started)
        _status, result = await client.request(
            "GET", f"/v1/sessions/{session_id}/result"
        )
    finally:
        await client.aclose()
    return result, latencies


async def _run_load(cfg):
    scenarios = _scenarios(cfg)
    manager = SessionManager()
    server = MinerServer(manager, "127.0.0.1", 0)
    await server.start()
    run_task = asyncio.create_task(server.run(install_signals=False))
    started = time.perf_counter()
    try:
        outcomes = await asyncio.gather(
            *(
                _drive_client(server.port, f"load-{i}", scenario, cfg, 400 + i)
                for i, scenario in enumerate(scenarios)
            )
        )
    finally:
        server.request_shutdown()
        await run_task
    elapsed = time.perf_counter() - started
    return scenarios, outcomes, elapsed


def _percentile(samples, q):
    ranked = sorted(samples)
    return ranked[min(len(ranked) - 1, int(q * len(ranked)))]


def test_serve_concurrent_load(benchmark, scale):
    cfg = SETTINGS[scale]

    def run():
        return asyncio.run(_run_load(cfg))

    scenarios, outcomes, elapsed = run_once(benchmark, run)

    all_latencies = []
    rows = []
    total_questions = 0
    for i, (scenario, (result, latencies)) in enumerate(
        zip(scenarios, outcomes)
    ):
        sync = run_sync(scenario)
        assert result["fingerprint"] == sync.fingerprint(), (
            f"session load-{i} diverged from its sync reference under load"
        )
        total_questions += result["questions_asked"]
        all_latencies.extend(latencies)
        rows.append(
            (
                f"load-{i}",
                result["questions_asked"],
                result["significant_rules"],
                f"{1_000 * _percentile(latencies, 0.50):.1f}",
                f"{1_000 * _percentile(latencies, 0.99):.1f}",
            )
        )

    qps = total_questions / elapsed
    p50 = _percentile(all_latencies, 0.50)
    p99 = _percentile(all_latencies, 0.99)
    print()
    print(
        f"=== serve: {cfg['sessions']} concurrent sessions, lognormal "
        f"think-time median {1_000 * cfg['think_median']:.0f}ms ({scale}) ==="
    )
    print(
        format_rows(
            ("session", "questions", "significant", "p50 ms", "p99 ms"),
            rows,
        )
    )
    print(
        f"aggregate: {total_questions} questions in {elapsed:.2f}s — "
        f"{qps:.0f} q/s, turnaround p50 {1_000 * p50:.1f}ms / "
        f"p99 {1_000 * p99:.1f}ms"
    )

    assert len(outcomes) == cfg["sessions"]
    assert qps >= cfg["floor_qps"], (
        f"aggregate throughput {qps:.0f} q/s fell below the "
        f"{cfg['floor_qps']:.0f} q/s floor with {cfg['sessions']} "
        f"concurrent sessions"
    )
    assert p99 <= cfg["p99_ceiling"], (
        f"p99 turnaround {p99:.3f}s exceeds the {cfg['p99_ceiling']}s ceiling"
    )
