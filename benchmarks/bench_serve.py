"""Serve — concurrent-session load benchmark (the serve-smoke floor).

Load test for the asyncio serving surface (``docs/serving.md``): one
:class:`~repro.serve.app.MinerServer` on an ephemeral port, ``N``
concurrent sessions, each driven by its own simulated client over real
HTTP. Clients pause between questions on a lognormal think-time clock —
the shape crowd latency actually has — so the server sees overlapping,
irregular request arrivals rather than a tight loop.

Three things are measured and asserted:

- aggregate throughput (questions answered per second of wall time)
  against a CI floor set far below measured performance — it guards
  against an accidental per-request O(sessions) or O(KB) regression in
  the routing/ingest path, not the constant;
- client-side p99 turnaround for one fetch-then-answer exchange (the
  latency a worker's browser would feel), bounded loosely;
- byte-identical fingerprints: every session, run under full
  concurrent load, must still reproduce its own synchronous reference
  transcript — the differential guarantee does not erode when the
  server is busy.

``REPRO_BENCH_SCALE=smoke`` runs 8 sessions in a few seconds (the CI
serve-smoke job); ``full`` widens to 16 sessions at larger budgets.
"""

import asyncio
import math
import random
import time

from repro.chaos import ChaosClient, TransportFaultPlan
from repro.eval import format_rows
from repro.serve import (
    JsonClient,
    MinerServer,
    RetryingClient,
    Scenario,
    SessionManager,
    SimulatedWorkerPool,
    drive_session,
    run_sync,
)

from conftest import run_once

SETTINGS = {
    "full": dict(
        sessions=16,
        n_members=10,
        transactions_per_member=60,
        budget=100,
        think_median=0.002,
        think_sigma=1.0,
        floor_qps=60.0,
        p99_ceiling=1.0,
    ),
    "smoke": dict(
        sessions=8,
        n_members=6,
        transactions_per_member=30,
        budget=40,
        think_median=0.001,
        think_sigma=1.0,
        floor_qps=40.0,
        p99_ceiling=1.0,
    ),
}


def _scenarios(cfg):
    """One independently-seeded world per concurrent session."""
    return [
        Scenario(
            n_members=cfg["n_members"],
            transactions_per_member=cfg["transactions_per_member"],
            budget=cfg["budget"],
            model_seed=100 + i,
            crowd_seed=200 + i,
            miner_seed=300 + i,
        )
        for i in range(cfg["sessions"])
    ]


async def _drive_client(port, session_id, scenario, cfg, seed):
    """One simulated worker crowd answering its session over HTTP.

    Returns (questions answered, per-exchange turnaround latencies).
    The think-time sleep sits *outside* the timed window: the latency
    recorded is the server's fetch+ingest round trip, the part a
    regression would move.
    """
    rng = random.Random(seed)
    mu = math.log(cfg["think_median"])
    pool = SimulatedWorkerPool(scenario.build_crowd())
    client = JsonClient("127.0.0.1", port)
    latencies = []
    try:
        _status, created = await client.request(
            "POST",
            "/v1/sessions",
            scenario.session_spec(pool.crowd.member_ids, id=session_id),
        )
        assert created.get("session") == session_id, created
        while True:
            await asyncio.sleep(rng.lognormvariate(mu, cfg["think_sigma"]))
            started = time.perf_counter()
            _status, doc = await client.request(
                "POST", f"/v1/sessions/{session_id}/question"
            )
            if doc["status"] == "done":
                break
            if doc["status"] in ("wait", "draining"):
                continue
            question = doc["question"]
            await client.request(
                "POST",
                f"/v1/sessions/{session_id}/answer",
                {
                    "question_id": question["question_id"],
                    "answer": pool.answer(question),
                },
            )
            latencies.append(time.perf_counter() - started)
        _status, result = await client.request(
            "GET", f"/v1/sessions/{session_id}/result"
        )
    finally:
        await client.aclose()
    return result, latencies


async def _run_load(cfg):
    scenarios = _scenarios(cfg)
    manager = SessionManager()
    server = MinerServer(manager, "127.0.0.1", 0)
    await server.start()
    run_task = asyncio.create_task(server.run(install_signals=False))
    started = time.perf_counter()
    try:
        outcomes = await asyncio.gather(
            *(
                _drive_client(server.port, f"load-{i}", scenario, cfg, 400 + i)
                for i, scenario in enumerate(scenarios)
            )
        )
    finally:
        server.request_shutdown()
        await run_task
    elapsed = time.perf_counter() - started
    return scenarios, outcomes, elapsed


def _percentile(samples, q):
    ranked = sorted(samples)
    return ranked[min(len(ranked) - 1, int(q * len(ranked)))]


def test_serve_concurrent_load(benchmark, scale):
    cfg = SETTINGS[scale]

    def run():
        return asyncio.run(_run_load(cfg))

    scenarios, outcomes, elapsed = run_once(benchmark, run)

    all_latencies = []
    rows = []
    total_questions = 0
    for i, (scenario, (result, latencies)) in enumerate(
        zip(scenarios, outcomes)
    ):
        sync = run_sync(scenario)
        assert result["fingerprint"] == sync.fingerprint(), (
            f"session load-{i} diverged from its sync reference under load"
        )
        total_questions += result["questions_asked"]
        all_latencies.extend(latencies)
        rows.append(
            (
                f"load-{i}",
                result["questions_asked"],
                result["significant_rules"],
                f"{1_000 * _percentile(latencies, 0.50):.1f}",
                f"{1_000 * _percentile(latencies, 0.99):.1f}",
            )
        )

    qps = total_questions / elapsed
    p50 = _percentile(all_latencies, 0.50)
    p99 = _percentile(all_latencies, 0.99)
    print()
    print(
        f"=== serve: {cfg['sessions']} concurrent sessions, lognormal "
        f"think-time median {1_000 * cfg['think_median']:.0f}ms ({scale}) ==="
    )
    print(
        format_rows(
            ("session", "questions", "significant", "p50 ms", "p99 ms"),
            rows,
        )
    )
    print(
        f"aggregate: {total_questions} questions in {elapsed:.2f}s — "
        f"{qps:.0f} q/s, turnaround p50 {1_000 * p50:.1f}ms / "
        f"p99 {1_000 * p99:.1f}ms"
    )

    assert len(outcomes) == cfg["sessions"]
    assert qps >= cfg["floor_qps"], (
        f"aggregate throughput {qps:.0f} q/s fell below the "
        f"{cfg['floor_qps']:.0f} q/s floor with {cfg['sessions']} "
        f"concurrent sessions"
    )
    assert p99 <= cfg["p99_ceiling"], (
        f"p99 turnaround {p99:.3f}s exceeds the {cfg['p99_ceiling']}s ceiling"
    )


# ~10% of faultable requests hit *something*: drops on both legs plus
# duplicate deliveries, the mix docs/robustness.md calls the "lossy
# office wifi" profile. Throughput under this plan must stay within 2x
# of the clean floor — retries cost round trips, not correctness.
FAULTED_DEGRADATION = 0.5


def _fault_plan(seed):
    return TransportFaultPlan(
        seed=seed, drop_request=0.04, drop_response=0.03, duplicate=0.03
    )


async def _drive_faulted_client(port, session_id, scenario, seed):
    """One session driven through a flaky transport with retries.

    The chaos proxy injects the faults; the retrying wrapper absorbs
    them with idempotency keys armed, so every lost or duplicated
    request resolves to exactly-once effects on the server.
    """
    pool = SimulatedWorkerPool(scenario.build_crowd())
    chaos = ChaosClient(JsonClient("127.0.0.1", port), _fault_plan(seed))
    client = RetryingClient(chaos, seed=seed + 1, max_attempts=12)
    try:
        _status, created = await client.request(
            "POST",
            "/v1/sessions",
            scenario.session_spec(pool.crowd.member_ids, id=session_id),
        )
        assert created.get("session") == session_id, created
        await drive_session(
            client, session_id, pool, poll_delay=0.001, key_prefix="b-"
        )
        _status, result = await client.request(
            "GET", f"/v1/sessions/{session_id}/result"
        )
    finally:
        await client.aclose()
    return result, chaos.counts, client.retries


async def _run_faulted_load(cfg):
    scenarios = _scenarios(cfg)
    manager = SessionManager()
    server = MinerServer(manager, "127.0.0.1", 0)
    await server.start()
    run_task = asyncio.create_task(server.run(install_signals=False))
    started = time.perf_counter()
    try:
        outcomes = await asyncio.gather(
            *(
                _drive_faulted_client(
                    server.port, f"flaky-{i}", scenario, 500 + i
                )
                for i, scenario in enumerate(scenarios)
            )
        )
    finally:
        server.request_shutdown()
        await run_task
    elapsed = time.perf_counter() - started
    return scenarios, outcomes, elapsed


def test_serve_faulted_load(benchmark, scale):
    """The clean load test rerun through a 10% flaky transport.

    Same fingerprint-equality bar as the clean variant — faults never
    reach the transcript — with the throughput floor halved: the chaos
    tax is bounded round trips, not a collapse.
    """
    cfg = SETTINGS[scale]

    def run():
        return asyncio.run(_run_faulted_load(cfg))

    scenarios, outcomes, elapsed = run_once(benchmark, run)

    total_questions = 0
    total_faults = 0
    total_retries = 0
    for i, (scenario, (result, counts, retries)) in enumerate(
        zip(scenarios, outcomes)
    ):
        sync = run_sync(scenario)
        assert result["fingerprint"] == sync.fingerprint(), (
            f"session flaky-{i} diverged from its sync reference "
            f"under transport faults"
        )
        total_questions += result["questions_asked"]
        total_faults += sum(counts.values())
        total_retries += retries

    qps = total_questions / elapsed
    floor = cfg["floor_qps"] * FAULTED_DEGRADATION
    print()
    print(
        f"=== serve: {cfg['sessions']} sessions through a flaky "
        f"transport ({scale}) ==="
    )
    print(
        f"aggregate: {total_questions} questions in {elapsed:.2f}s — "
        f"{qps:.0f} q/s with {total_faults} faults injected, "
        f"{total_retries} client retries (clean floor "
        f"{cfg['floor_qps']:.0f}, faulted floor {floor:.0f})"
    )

    assert total_faults > 0, "the fault plan injected nothing; raise the rates"
    assert qps >= floor, (
        f"faulted throughput {qps:.0f} q/s fell below {floor:.0f} q/s — "
        f"the retry path is costing more than the bounded-round-trip tax"
    )
