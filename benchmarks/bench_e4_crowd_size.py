"""E4 — crowd size (reconstructed figure), plus the large-crowd sweep.

The cost of mining is driven by *samples per rule*, not by how many
members exist: a larger crowd spreads the same number of questions over
more people (lower per-member burden) but the questions-to-quality
curve stays roughly crowd-size-invariant, until the crowd gets so small
that per-member patience (here: the sheer number of distinct answerers
available per rule) binds.

The large-crowd sweep exercises the array backend
(``docs/scaling.md``) at 10k/100k/1M members, reporting closed-question
throughput and peak RSS, with a CI floor in the style of
``bench_e7_runtime``: the 100k-member row must clear ten times the
PR 1 (object-path) throughput floor.
"""

import time

import numpy as np

from repro.core import Rule
from repro.crowd import ArrayCrowd, ExactAnswerModel
from repro.estimation import Thresholds
from repro.eval import (
    ExperimentConfig,
    build_world,
    e4_crowd_size,
    format_experiment,
    format_rows,
    run_variants,
)
from repro.miner import CrowdMiner, CrowdMinerConfig, FixedRatioPolicy

from conftest import run_once

try:
    import resource
except ImportError:  # pragma: no cover - non-Unix
    resource = None


def test_e4_crowd_size(benchmark, scale):
    base, variants = e4_crowd_size(scale)

    def run():
        return run_variants(base, variants)

    results = run_once(benchmark, run)
    print()
    print(format_experiment(f"E4: crowd size ({scale})", results))

    # Per-member burden falls as the crowd grows.
    burdens = {}
    for label, result in results.items():
        n_members = result.config.n_members
        questions = result.curve.final().questions
        burdens[label] = questions / n_members
    ordered = [burdens[label] for label in sorted(burdens, key=lambda l: int(l.split("_")[1]))]
    assert ordered[0] >= ordered[-1]

    # Every crowd size achieves a nonzero result.
    for label, result in results.items():
        assert result.curve.final().f1 >= 0.0


#: The large-crowd sweep. ``floor_qps`` is ten times the PR 1
#: object-path floor from ``bench_e7_runtime.KB_SETTINGS`` (full 400,
#: smoke 600 q/s), asserted at the ``floor_at`` crowd size; the smoke
#: sweep stops at 100k to keep CI fast, full climbs to a million.
#: ``max_rss_mb`` is a loose guard against accidentally materializing
#: the crowd as objects (a million members as objects costs GBs).
LARGE_SETTINGS = {
    "full": dict(
        sizes=(10_000, 100_000, 1_000_000),
        seed_rules=500,
        budget=2_000,
        floor_qps=4_000.0,
        floor_at=100_000,
        max_rss_mb=1_500.0,
    ),
    "smoke": dict(
        sizes=(10_000, 100_000),
        seed_rules=300,
        budget=600,
        floor_qps=6_000.0,
        floor_at=100_000,
        max_rss_mb=1_500.0,
    ),
}


def _random_seed_rules(items, count, rng):
    """``count`` distinct random rules over ``items`` (2–4 item bodies)."""
    rules = set()
    while len(rules) < count:
        size = int(rng.integers(2, 5))
        chosen = [items[k] for k in rng.choice(len(items), size=size, replace=False)]
        cut = int(rng.integers(1, size))
        rules.add(Rule(chosen[:cut], chosen[cut:]))
    return tuple(rules)


def _peak_rss_mb() -> float:
    if resource is None:
        return float("nan")
    return resource.getrusage(resource.RUSAGE_SELF).ru_maxrss / 1024


def test_e4_large_crowd_throughput(benchmark, scale):
    """Closed-question throughput on the array backend, 10k → 1M members.

    Measured with the same sync step-loop methodology as
    ``bench_e7_runtime.test_e7_kb_scale_closed_throughput`` (whose
    floors this sweep multiplies by ten), with the exact answer model:
    the at-scale dispatch path batches answer draws per window, so the
    sync loop with per-answer noise draws would charge the array
    backend a generator-construction cost the scale path doesn't pay.
    Per-member state is generated on demand, so throughput should be
    flat in crowd size and memory sublinear in it.
    """
    cfg = LARGE_SETTINGS[scale]

    def session(n_members):
        world = ExperimentConfig(
            name="e4-large",
            n_items=80,
            n_patterns=10,
            n_members=n_members,
            transactions_per_member=100,
            budget=cfg["budget"],
            checkpoints=(cfg["budget"],),
            repetitions=1,
            population_backend="array",
            seed=41,
        )
        model, population, _ = build_world(world, seed=41, ground_truth=False)
        rng = np.random.default_rng(42)
        seed_rules = _random_seed_rules(model.domain.items, cfg["seed_rules"], rng)
        crowd = ArrayCrowd(population, answer_model=ExactAnswerModel(), seed=43)
        miner = CrowdMiner(
            crowd,
            CrowdMinerConfig(
                thresholds=Thresholds(0.10, 0.5),
                budget=cfg["budget"],
                seed_rules=seed_rules,
                open_policy=FixedRatioPolicy(0.0, fallback_to_open=False),
                expand_generalizations=False,
                expand_splits=False,
                seed=44,
            ),
        )
        started = time.perf_counter()
        asked = 0
        while asked < cfg["budget"] and not miner.is_done:
            if miner.step() is None:
                break
            asked += 1
        return asked, time.perf_counter() - started, _peak_rss_mb()

    def run():
        return [(n, *session(n)) for n in cfg["sizes"]]

    measured = run_once(benchmark, run)

    rows = []
    qps_at = {}
    for n, asked, elapsed, rss in measured:
        qps = asked / elapsed if elapsed > 0 else float("inf")
        qps_at[n] = qps
        rows.append(
            (f"{n:,}", asked, f"{qps:,.0f}", f"{1_000 * elapsed / max(1, asked):.3f}", f"{rss:.0f}")
        )
    print()
    print(f"=== E4: large-crowd closed-question throughput ({scale}) ===")
    print(
        format_rows(
            ("members", "questions", "q/s", "ms/q", "peak RSS MB"), rows
        )
    )

    for n, asked, _, _ in measured:
        assert asked > 0, f"{n}-member session asked no questions"
    floor_at = cfg["floor_at"]
    assert qps_at[floor_at] >= cfg["floor_qps"], (
        f"closed-question throughput {qps_at[floor_at]:.0f} q/s at "
        f"{floor_at:,} members fell below the {cfg['floor_qps']:.0f} q/s "
        f"floor (10x the PR 1 object-path floor)"
    )
    if resource is not None:
        peak = measured[-1][3]
        assert peak <= cfg["max_rss_mb"], (
            f"peak RSS {peak:.0f} MB exceeds the {cfg['max_rss_mb']:.0f} MB "
            f"guard — member state may be materializing eagerly"
        )
