"""E4 — crowd size (reconstructed figure).

The cost of mining is driven by *samples per rule*, not by how many
members exist: a larger crowd spreads the same number of questions over
more people (lower per-member burden) but the questions-to-quality
curve stays roughly crowd-size-invariant, until the crowd gets so small
that per-member patience (here: the sheer number of distinct answerers
available per rule) binds.
"""

from repro.eval import e4_crowd_size, format_experiment, run_variants

from conftest import run_once


def test_e4_crowd_size(benchmark, scale):
    base, variants = e4_crowd_size(scale)

    def run():
        return run_variants(base, variants)

    results = run_once(benchmark, run)
    print()
    print(format_experiment(f"E4: crowd size ({scale})", results))

    # Per-member burden falls as the crowd grows.
    burdens = {}
    for label, result in results.items():
        n_members = result.config.n_members
        questions = result.curve.final().questions
        burdens[label] = questions / n_members
    ordered = [burdens[label] for label in sorted(burdens, key=lambda l: int(l.split("_")[1]))]
    assert ordered[0] >= ordered[-1]

    # Every crowd size achieves a nonzero result.
    for label, result in results.items():
        assert result.curve.final().f1 >= 0.0
