"""Substrate microbenchmark: the three classic miners on Quest data.

Not a paper figure — an engineering benchmark of the classic substrate
the reproduction stands on. Verifies the three algorithms agree on the
workload while pytest-benchmark records their relative speed (Eclat is
typically fastest on these dense baskets, Apriori slowest).
"""

import pytest

from repro.classic import (
    apriori_frequent_itemsets,
    eclat_frequent_itemsets,
    fpgrowth_frequent_itemsets,
)
from repro.synth import QuestConfig, QuestGenerator

SETTINGS = {
    "full": QuestConfig(n_items=120, n_transactions=6_000, n_patterns=30),
    "smoke": QuestConfig(n_items=60, n_transactions=1_000, n_patterns=12),
}
MIN_SUPPORT = 0.05
MAX_SIZE = 4

MINERS = {
    "apriori": apriori_frequent_itemsets,
    "fpgrowth": fpgrowth_frequent_itemsets,
    "eclat": eclat_frequent_itemsets,
}


@pytest.fixture(scope="module")
def quest_db(scale):
    return QuestGenerator(SETTINGS[scale], seed=99).generate()


@pytest.mark.parametrize("miner_name", sorted(MINERS))
def test_classic_miner_speed(benchmark, quest_db, miner_name):
    miner = MINERS[miner_name]
    result = benchmark.pedantic(
        lambda: miner(quest_db, MIN_SUPPORT, max_size=MAX_SIZE),
        rounds=1,
        iterations=1,
        warmup_rounds=0,
    )
    assert result  # found something
    # Cross-check against FP-Growth (cheap enough to run once more).
    reference = fpgrowth_frequent_itemsets(quest_db, MIN_SUPPORT, max_size=MAX_SIZE)
    assert set(result) == set(reference)
