"""E8 — threshold sensitivity (reconstructed figure).

Raising (θ_s, θ_c) shrinks the true significant set and prunes the
search earlier, so the question cost of covering the truth falls; the
miner must remain accurate across the sweep.
"""

from repro.eval import e8_thresholds, format_experiment, run_variants

from conftest import run_once


def test_e8_threshold_sensitivity(benchmark, scale):
    base, variants = e8_thresholds(scale)

    def run():
        return run_variants(base, variants)

    results = run_once(benchmark, run)
    print()
    print(format_experiment(f"E8: threshold sensitivity ({scale})", results))

    # Truth size must shrink monotonically along the sweep grid.
    sizes = [
        results[label].mean_truth_size
        for label in sorted(results)  # labels sort by threshold
    ]
    assert sizes == sorted(sizes, reverse=True)

    # Quality should be decent at the strictest setting (fewer, clearer
    # rules are easier to settle).
    strictest = sorted(results)[-1]
    if scale == "full":
        assert results[strictest].curve.final().f1 >= 0.4
