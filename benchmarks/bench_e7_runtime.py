"""E7 — system runtime (table).

The paper's system-side measurement: what does question selection cost
as the knowledge base grows? Selection is the per-question inner loop
(rank every unresolved rule), so its latency must stay in the
low-millisecond range even with thousands of known rules — crowd
latency, not CPU, must dominate a session.

Two measurements:

- the full-session latency table (per-question cost bucketed by
  knowledge-base size, open-question simulation included);
- a closed-only throughput benchmark against a *pre-seeded* knowledge
  base at the largest configured size, which isolates the knowledge-base
  data structures (index, cached summaries, maintained views) from the
  cost of simulating members' memories. This one asserts a throughput
  floor, so an accidental O(n²) regression in the inner loop fails CI
  instead of surfacing as benchmark drift months later;
- an in-flight window sweep under the dispatch engine: the same
  session at windows 1, 8 and 32, asserting that simulated makespan
  improves monotonically as more questions overlap. Here the clock is
  the *simulated* one — the sweep measures the dispatcher's batching
  payoff, while pytest-benchmark still records the CPU cost of driving
  the event loop;
- a checkpoint-overhead variant: the same full session run plain and
  with a SQLite store checkpointing every 100 questions, asserting the
  persistence layer stays within a 10% share of session wall time
  (``docs/persistence.md``).

Both print the session's own instrumentation (``repro.obs``), so the
numbers come with their per-phase breakdown attached.
"""

import time

import numpy as np

from repro.core import Rule
from repro.crowd import SimulatedCrowd, standard_answer_model
from repro.dispatch import DispatchConfig, Dispatcher, LognormalLatency
from repro.estimation import Thresholds
from repro.eval import format_rows
from repro.eval.runner import ExperimentConfig, build_world
from repro.miner import CrowdMiner, CrowdMinerConfig, FixedRatioPolicy
from repro.storage import SQLiteBackend

from conftest import run_once

SETTINGS = {
    "full": dict(n_items=300, n_patterns=30, n_members=60, budget=3_000),
    "smoke": dict(n_items=80, n_patterns=10, n_members=15, budget=400),
}

#: The dispatch sweep: budget for the windowed sessions and the
#: latency every member answers with (lognormal, median ~a minute).
DISPATCH_SETTINGS = {
    "full": dict(budget=1_500, median=60.0, sigma=1.0),
    "smoke": dict(budget=250, median=60.0, sigma=1.0),
}

#: In-flight windows swept by the dispatch benchmark, small to large.
DISPATCH_WINDOWS = (1, 8, 32)

#: The KB-scale benchmark: how many rules are pre-seeded (the largest
#: knowledge-base size exercised) and how many closed questions are
#: then pushed through it.
KB_SETTINGS = {
    "full": dict(seed_rules=5_000, budget=1_500, floor_qps=400.0),
    "smoke": dict(seed_rules=1_000, budget=300, floor_qps=600.0),
}

#: The checkpoint-overhead variant: checkpoint cadence and the maximum
#: share of session wall time the persistence layer may consume. The
#: 10% ceiling is the repo's stated overhead budget for ``--checkpoint``
#: at the default cadence (``docs/persistence.md``).
CKPT_SETTINGS = {
    "full": dict(checkpoint_every=100, max_overhead=0.10),
    "smoke": dict(checkpoint_every=100, max_overhead=0.10),
}


def _print_obs(miner, title):
    snapshot = miner.obs.snapshot()
    print()
    print(f"--- instrumentation ({title}) ---")
    print(snapshot.format())


def test_e7_selection_latency(benchmark, scale):
    cfg = SETTINGS[scale]
    config = ExperimentConfig(
        name="e7",
        n_items=cfg["n_items"],
        n_patterns=cfg["n_patterns"],
        n_members=cfg["n_members"],
        budget=cfg["budget"],
        checkpoints=(cfg["budget"],),
        repetitions=1,
        seed=77,
    )
    _, population, _ = build_world(config, seed=77)
    crowd = SimulatedCrowd.from_population(
        population, answer_model=standard_answer_model(), seed=78
    )
    miner = CrowdMiner(
        crowd,
        CrowdMinerConfig(thresholds=Thresholds(0.10, 0.5), budget=cfg["budget"], seed=79),
    )

    buckets: dict[int, list[float]] = {}

    def run():
        bucket_width = 250
        while not miner.is_done:
            kb_size = len(miner.state)
            started = time.perf_counter()
            if miner.step() is None:
                break
            elapsed = time.perf_counter() - started
            buckets.setdefault(kb_size // bucket_width * bucket_width, []).append(elapsed)
        return buckets

    run_once(benchmark, run)

    rows = []
    for bucket in sorted(buckets):
        samples = buckets[bucket]
        mean_ms = 1_000 * sum(samples) / len(samples)
        worst_ms = 1_000 * max(samples)
        rows.append((f"{bucket}–{bucket + 249}", len(samples), f"{mean_ms:.2f}", f"{worst_ms:.2f}"))
    print()
    print(f"=== E7: per-question latency vs knowledge-base size ({scale}) ===")
    print(format_rows(("KB size (rules)", "questions", "mean ms/q", "max ms/q"), rows))
    _print_obs(miner, f"e7 session, {scale}")

    # The claim: selection stays interactive (well under the seconds a
    # human needs to answer) even at the largest knowledge-base size.
    largest = max(buckets)
    mean_ms = 1_000 * sum(buckets[largest]) / len(buckets[largest])
    assert mean_ms < 200.0


def _random_seed_rules(items, count, rng):
    """``count`` distinct random rules over ``items`` (2–4 item bodies)."""
    rules = set()
    while len(rules) < count:
        size = int(rng.integers(2, 5))
        chosen = [items[k] for k in rng.choice(len(items), size=size, replace=False)]
        cut = int(rng.integers(1, size))
        rules.add(Rule(chosen[:cut], chosen[cut:]))
    return tuple(rules)


def test_e7_kb_scale_closed_throughput(benchmark, scale):
    """Closed-question throughput with thousands of rules pre-seeded.

    Every question here is a closed question against an already-large
    knowledge base, so the measured cost is the knowledge base itself:
    strategy ranking over the unresolved view, evidence recording,
    summary (re)computation and lattice maintenance. The full-scale
    floor is set far below the measured throughput of the incremental
    implementation but above what a per-question full-scan rebuild can
    reach at 5 000 rules — it guards the complexity class, not the
    constant. (The smoke floor is necessarily looser: a 1 000-rule KB
    doesn't separate the complexity classes as sharply.)
    """
    cfg = KB_SETTINGS[scale]
    world = ExperimentConfig(
        name="e7-kb",
        n_items=SETTINGS[scale]["n_items"],
        n_patterns=SETTINGS[scale]["n_patterns"],
        n_members=SETTINGS[scale]["n_members"],
        budget=cfg["budget"],
        checkpoints=(cfg["budget"],),
        repetitions=1,
        seed=91,
    )
    model, population, _ = build_world(world, seed=91)
    rng = np.random.default_rng(92)
    seed_rules = _random_seed_rules(model.domain.items, cfg["seed_rules"], rng)
    crowd = SimulatedCrowd.from_population(
        population, answer_model=standard_answer_model(), seed=93
    )
    miner = CrowdMiner(
        crowd,
        CrowdMinerConfig(
            thresholds=Thresholds(0.10, 0.5),
            budget=cfg["budget"],
            seed_rules=seed_rules,
            open_policy=FixedRatioPolicy(0.0, fallback_to_open=False),
            expand_generalizations=False,
            expand_splits=False,
            seed=94,
        ),
    )

    def run():
        started = time.perf_counter()
        asked = 0
        while asked < cfg["budget"] and not miner.is_done:
            if miner.step() is None:
                break
            asked += 1
        return asked, time.perf_counter() - started

    asked, elapsed = run_once(benchmark, run)

    qps = asked / elapsed if elapsed > 0 else float("inf")
    print()
    print(f"=== E7: closed-question throughput at {len(seed_rules)} seeded rules ({scale}) ===")
    print(
        f"{asked} questions in {elapsed:.3f}s — {qps:.0f} q/s "
        f"({1_000 * elapsed / max(1, asked):.2f} ms/q)"
    )
    _print_obs(miner, f"kb-scale session, {scale}")

    assert asked > 0
    assert qps >= cfg["floor_qps"], (
        f"closed-question throughput {qps:.0f} q/s fell below the "
        f"{cfg['floor_qps']} q/s floor at {len(seed_rules)} rules"
    )


def _e7_session(cfg, storage, checkpoint_every):
    """The standard E7 session, optionally persisted to ``storage``."""
    config = ExperimentConfig(
        name="e7-ckpt",
        n_items=cfg["n_items"],
        n_patterns=cfg["n_patterns"],
        n_members=cfg["n_members"],
        budget=cfg["budget"],
        checkpoints=(cfg["budget"],),
        repetitions=1,
        seed=77,
    )
    _, population, _ = build_world(config, seed=77)
    crowd = SimulatedCrowd.from_population(
        population, answer_model=standard_answer_model(), seed=78
    )
    return CrowdMiner(
        crowd,
        CrowdMinerConfig(
            thresholds=Thresholds(0.10, 0.5),
            budget=cfg["budget"],
            checkpoint_every=checkpoint_every,
            seed=79,
        ),
        storage=storage,
    )


def test_e7_checkpoint_overhead(benchmark, scale, tmp_path):
    """Persistence overhead of a checkpointed session vs the plain one.

    Runs the identical E7 session twice — without storage, and with the
    SQLite backend checkpointing every ``checkpoint_every`` questions —
    and bounds the persistence layer's share of the checkpointed
    session's wall time. The assertion reads the session's own
    ``storage.checkpoint`` timer rather than the plain-vs-persisted
    throughput delta: on a shared CI runner the end-to-end delta is
    dominated by machine noise (the true overhead is a few percent),
    while the timer share measures exactly the cost being budgeted and
    stays stable. The write-ahead answer log batches into the
    checkpoint transaction, so its per-question cost is one uncommitted
    INSERT — included in the wall time, invisible in the timer, and an
    order of magnitude below the capture cost it rides along with.
    Both throughputs are still printed for the table.
    """
    cfg = dict(SETTINGS[scale])
    cfg.update(CKPT_SETTINGS[scale])

    def run():
        results = {}
        for label, storage, every in (
            ("plain", None, 0),
            ("sqlite", SQLiteBackend(tmp_path / "e7.db", fresh=True), cfg["checkpoint_every"]),
        ):
            miner = _e7_session(cfg, storage, every)
            started = time.perf_counter()
            asked = 0
            while not miner.is_done:
                if miner.step() is None:
                    break
                asked += 1
            if storage is not None:
                miner.checkpoint()  # final capture, as the CLI does
            elapsed = time.perf_counter() - started
            if storage is not None:
                storage.close()
            results[label] = (asked, elapsed, miner)
        return results

    results = run_once(benchmark, run)

    rows = []
    for label, (asked, elapsed, miner) in results.items():
        snapshot = miner.obs.snapshot()
        timer = snapshot.timers.get("storage.checkpoint")
        rows.append(
            (
                label,
                asked,
                f"{elapsed:.3f}",
                f"{asked / elapsed:.0f}",
                0 if timer is None else timer.calls,
                "-" if timer is None else f"{1_000 * timer.total_seconds:.0f}",
            )
        )
    print()
    print(
        f"=== E7: checkpoint overhead, sqlite every "
        f"{cfg['checkpoint_every']} questions ({scale}) ==="
    )
    print(
        format_rows(
            ("session", "questions", "wall s", "q/s", "checkpoints", "ckpt ms"),
            rows,
        )
    )
    _print_obs(results["sqlite"][2], f"checkpointed e7 session, {scale}")

    asked, elapsed, miner = results["sqlite"]
    snapshot = miner.obs.snapshot()
    assert asked == cfg["budget"]
    assert snapshot.counters["storage.answers_logged"] == asked
    # The in-session cadence plus the final capture.
    expected = asked // cfg["checkpoint_every"] + 1
    assert snapshot.counters["storage.checkpoints"] == expected
    overhead = snapshot.timers["storage.checkpoint"].total_seconds / elapsed
    assert overhead <= cfg["max_overhead"], (
        f"checkpointing consumed {100 * overhead:.1f}% of session wall time, "
        f"over the {100 * cfg['max_overhead']:.0f}% budget"
    )


def test_e7_dispatch_window_sweep(benchmark, scale):
    """Simulated makespan vs in-flight window under human-scale latency.

    The crowd answers on a lognormal clock (median about a minute), so
    with one question in flight the session's wall time is the sum of
    every answer delay. Widening the window overlaps those waits; the
    sweep asserts the payoff is monotone — each wider window finishes
    the same budget in no more simulated time, and window 8 beats
    window 1 outright.
    """
    cfg = DISPATCH_SETTINGS[scale]
    world = ExperimentConfig(
        name="e7-dispatch",
        n_items=SETTINGS[scale]["n_items"],
        n_patterns=SETTINGS[scale]["n_patterns"],
        n_members=SETTINGS[scale]["n_members"],
        budget=cfg["budget"],
        checkpoints=(cfg["budget"],),
        repetitions=1,
        seed=85,
    )
    _, population, _ = build_world(world, seed=85)

    def run():
        makespans = {}
        for window in DISPATCH_WINDOWS:
            crowd = SimulatedCrowd.from_population(
                population, answer_model=standard_answer_model(), seed=86
            )
            miner = CrowdMiner(
                crowd,
                CrowdMinerConfig(
                    thresholds=Thresholds(0.10, 0.5),
                    budget=cfg["budget"],
                    seed=87,
                ),
            )
            dispatcher = Dispatcher(
                miner,
                DispatchConfig(
                    window=window,
                    latency=LognormalLatency(
                        median=cfg["median"], sigma=cfg["sigma"]
                    ),
                    seed=88,
                ),
            )
            result = dispatcher.run()
            makespans[window] = (result.dispatch, miner)
        return makespans

    makespans = run_once(benchmark, run)

    rows = []
    for window in DISPATCH_WINDOWS:
        stats, _ = makespans[window]
        rows.append(
            (
                window,
                stats.issued,
                stats.completed,
                stats.in_flight_high_water,
                f"{stats.makespan:,.0f}",
            )
        )
    print()
    print(f"=== E7: simulated makespan vs in-flight window ({scale}) ===")
    print(
        format_rows(
            ("window", "issued", "completed", "high water", "makespan (sim s)"),
            rows,
        )
    )
    _print_obs(makespans[DISPATCH_WINDOWS[-1]][1], f"window {DISPATCH_WINDOWS[-1]}, {scale}")

    # Monotone payoff: a wider window never loses, and overlapping
    # even eight questions wins outright over the serial session.
    for narrow, wide in zip(DISPATCH_WINDOWS, DISPATCH_WINDOWS[1:]):
        assert makespans[wide][0].makespan <= makespans[narrow][0].makespan, (
            f"window {wide} took {makespans[wide][0].makespan:.0f}s, "
            f"more than window {narrow} at {makespans[narrow][0].makespan:.0f}s"
        )
    assert makespans[8][0].makespan < makespans[1][0].makespan
