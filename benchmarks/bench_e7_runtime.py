"""E7 — system runtime (table).

The paper's system-side measurement: what does question selection cost
as the knowledge base grows? Selection is the per-question inner loop
(rank every unresolved rule), so its latency must stay in the
low-millisecond range even with thousands of known rules — crowd
latency, not CPU, must dominate a session.
"""

import time

from repro.crowd import SimulatedCrowd, standard_answer_model
from repro.estimation import Thresholds
from repro.eval import format_rows
from repro.eval.runner import ExperimentConfig, build_world
from repro.miner import CrowdMiner, CrowdMinerConfig

from conftest import run_once

SETTINGS = {
    "full": dict(n_items=300, n_patterns=30, n_members=60, budget=3_000),
    "smoke": dict(n_items=80, n_patterns=10, n_members=15, budget=400),
}


def test_e7_selection_latency(benchmark, scale):
    cfg = SETTINGS[scale]
    config = ExperimentConfig(
        name="e7",
        n_items=cfg["n_items"],
        n_patterns=cfg["n_patterns"],
        n_members=cfg["n_members"],
        budget=cfg["budget"],
        checkpoints=(cfg["budget"],),
        repetitions=1,
        seed=77,
    )
    _, population, _ = build_world(config, seed=77)
    crowd = SimulatedCrowd.from_population(
        population, answer_model=standard_answer_model(), seed=78
    )
    miner = CrowdMiner(
        crowd,
        CrowdMinerConfig(thresholds=Thresholds(0.10, 0.5), budget=cfg["budget"], seed=79),
    )

    buckets: dict[int, list[float]] = {}

    def run():
        bucket_width = 250
        while not miner.is_done:
            kb_size = len(miner.state)
            started = time.perf_counter()
            if miner.step() is None:
                break
            elapsed = time.perf_counter() - started
            buckets.setdefault(kb_size // bucket_width * bucket_width, []).append(elapsed)
        return buckets

    run_once(benchmark, run)

    rows = []
    for bucket in sorted(buckets):
        samples = buckets[bucket]
        mean_ms = 1_000 * sum(samples) / len(samples)
        worst_ms = 1_000 * max(samples)
        rows.append((f"{bucket}–{bucket + 249}", len(samples), f"{mean_ms:.2f}", f"{worst_ms:.2f}"))
    print()
    print(f"=== E7: per-question latency vs knowledge-base size ({scale}) ===")
    print(format_rows(("KB size (rules)", "questions", "mean ms/q", "max ms/q"), rows))

    # The claim: selection stays interactive (well under the seconds a
    # human needs to answer) even at the largest knowledge-base size.
    largest = max(buckets)
    mean_ms = 1_000 * sum(buckets[largest]) / len(buckets[largest])
    assert mean_ms < 200.0
