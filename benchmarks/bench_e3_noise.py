"""E3 — answer noise (reconstructed robustness figure).

Crowd answers are imprecise: perception noise plus the coarse
five-point frequency vocabulary. The claim is graceful degradation —
noise costs questions, it does not break the miner.
"""

from repro.eval import e3_noise, format_experiment, run_variants

from conftest import run_once


def test_e3_noise(benchmark, scale):
    base, variants = e3_noise(scale)

    def run():
        return run_variants(base, variants)

    results = run_once(benchmark, run)
    print()
    print(format_experiment(f"E3: answer noise ({scale})", results))

    final = {label: r.curve.final() for label, r in results.items()}
    # Exact answers are the ceiling (small slack for seed luck).
    noisiest = final["sigma_0.20"].f1
    assert final["exact"].f1 >= noisiest - 0.05
    # Even the noisiest crowd produces a usable result at full scale —
    # degradation, not collapse.
    if scale == "full":
        assert noisiest > 0.2
