"""E5 — domain scale (reconstructed figure).

The point of crowd mining over exhaustive enumeration: the number of
questions tracks the number of *significant* rules, not the size of the
item vocabulary. Growing the domain 5–20× at a fixed habit count
barely moves the curve; growing the habit count does.
"""

from repro.eval import e5_scale, format_experiment, run_variants

from conftest import run_once


def test_e5_scale(benchmark, scale):
    base, variants = e5_scale(scale)

    def run():
        return run_variants(base, variants)

    results = run_once(benchmark, run)
    print()
    print(format_experiment(f"E5: domain scale ({scale})", results))

    def f1_of(label):
        return results[label].curve.final().f1

    if scale == "full":
        # Domain size barely matters at fixed habit count...
        assert abs(f1_of("items_50_rules_10") - f1_of("items_800_rules_10")) < 0.35
        # ...but 4× the habits at the same budget costs real quality.
        assert f1_of("items_200_rules_10") >= f1_of("items_200_rules_40") - 0.05
    else:
        assert abs(f1_of("items_60_rules_8") - f1_of("items_200_rules_8")) < 0.4
