"""E8-R — adversarial robustness (degradation curve, new figure).

Sweeps the colluding-spammer fraction (0% → 50%) with the quality-
control loop off and on. Two claims are asserted:

- **graceful degradation** — with the loop off, quality falls as the
  spammer fraction grows, but the session always completes;
- **recovery floor** — at a 30% spammer mix, gold probes + outlier
  screening + quarantine must claw back at least half of the F1 lost
  to the spam (the ISSUE's CI-enforced acceptance bar; asserted at
  smoke scale — see E8-R in EXPERIMENTS.md for the full-scale
  limitation this sweep surfaced).
"""

from repro.eval import e8r_robustness, format_experiment, run_variants

from conftest import run_once


def final_f1(results, label):
    return results[label].curve.final().f1


def test_e8r_robustness_degradation(benchmark, scale):
    base, variants = e8r_robustness(scale)

    def run():
        return run_variants(base, variants)

    results = run_once(benchmark, run)
    print()
    print(format_experiment(f"E8-R: adversarial robustness ({scale})", results))

    # Every cell of the sweep completed and produced a curve.
    assert set(results) == set(variants)

    clean = final_f1(results, "spam_00_q_off")
    poisoned = final_f1(results, "spam_30_q_off")
    defended = final_f1(results, "spam_30_q_on")
    assert clean > 0.0, "clean baseline found nothing; world too hard"

    # Graceful degradation: heavy spam hurts the undefended miner.
    assert poisoned <= clean

    # The recovery floor. The quality loop must recover at least half
    # of the F1 the 30% spammer mix cost, and must never make the
    # poisoned session worse. Enforced at smoke scale (the scale CI
    # runs): at full scale the longer session settles more colluder-
    # fabricated rules before the probes catch up, the probes — which
    # score members against the crowd aggregate — are themselves
    # poisoned, and the defense turns net-negative. EXPERIMENTS.md
    # (E8-R) records that measured limitation rather than hiding it.
    lost = clean - poisoned
    recovered = defended - poisoned
    if scale == "smoke":
        assert recovered >= 0.0, (
            f"quality loop hurt the poisoned session: "
            f"{defended:.3f} < {poisoned:.3f}"
        )
        if lost > 0.0:
            assert recovered >= 0.5 * lost, (
                f"quarantine recovered {recovered:.3f} of {lost:.3f} lost F1 "
                f"(clean {clean:.3f}, poisoned {poisoned:.3f}, defended "
                f"{defended:.3f}) - below the 50% floor"
            )

    # The loop must stay (near) free when nobody misbehaves: enabling
    # it on a clean crowd spends gold-probe budget but must not
    # collapse quality.
    clean_defended = final_f1(results, "spam_00_q_on")
    assert clean_defended >= 0.8 * clean
