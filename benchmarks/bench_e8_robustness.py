"""E8-R — adversarial robustness (degradation curve, new figure).

Sweeps the colluding-spammer fraction (0% → 50%) with the quality-
control loop off and on. The on rows run the latent-ability trust
model (joint member/truth estimation, ``repro.faults.latent``) — the
gold-probe loop it replaced scored members against the poisonable
crowd aggregate and turned net-negative under heavy collusion. Three
claims are asserted:

- **graceful degradation** — with the loop off, quality falls as the
  spammer fraction grows, but the session always completes;
- **net-positive everywhere** — at *every* swept fraction, enabling
  the defence must not cost F1 (the regression bar that the poisoned
  gold loop failed); at 0% the two rows must match exactly, because a
  clean quality-enabled session is byte-identical to a disabled one;
- **recovery floor** — at a 30% colluder mix the defence must claw
  back at least half of the F1 lost to the attack.
"""

from repro.eval import e8r_robustness, format_experiment, run_variants

from conftest import run_once

FRACTIONS = ("00", "10", "30", "50")


def final_f1(results, label):
    return results[label].curve.final().f1


def test_e8r_robustness_degradation(benchmark, scale):
    base, variants = e8r_robustness(scale)

    def run():
        return run_variants(base, variants)

    results = run_once(benchmark, run)
    print()
    print(format_experiment(f"E8-R: adversarial robustness ({scale})", results))

    # Every cell of the sweep completed and produced a curve.
    assert set(results) == set(variants)

    clean = final_f1(results, "spam_00_q_off")
    poisoned = final_f1(results, "spam_30_q_off")
    defended = final_f1(results, "spam_30_q_on")
    assert clean > 0.0, "clean baseline found nothing; world too hard"

    # Graceful degradation: heavy spam hurts the undefended miner.
    assert poisoned <= clean

    # Net-positive everywhere: turning the defence on must never cost
    # F1, at any collusion level. This is the bar the gold-probe loop
    # failed — colluder-settled rules poisoned the probes' reference
    # aggregate and the defense went net-negative at scale. The latent
    # model has no reference to poison, so the bar is CI-enforced at
    # the benchmark's running scale, not just smoke.
    for fraction in FRACTIONS:
        off = final_f1(results, f"spam_{fraction}_q_off")
        on = final_f1(results, f"spam_{fraction}_q_on")
        assert on >= off, (
            f"quality loop hurt the {fraction}% session: "
            f"on {on:.3f} < off {off:.3f}"
        )

    # A clean quality-enabled session is byte-identical to a disabled
    # one (the all-trust-1.0 fast path), so at 0% the rows must tie
    # exactly, not just approximately.
    assert final_f1(results, "spam_00_q_on") == clean

    # The recovery floor: at a 30% colluder mix the defence must claw
    # back at least half of the lost F1.
    lost = clean - poisoned
    recovered = defended - poisoned
    if lost > 0.0:
        assert recovered >= 0.5 * lost, (
            f"quarantine recovered {recovered:.3f} of {lost:.3f} lost F1 "
            f"(clean {clean:.3f}, poisoned {poisoned:.3f}, defended "
            f"{defended:.3f}) - below the 50% floor"
        )
