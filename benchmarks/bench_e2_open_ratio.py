"""E2 — open/closed question mix (reconstructed trade-off figure).

The paper's central tension: open questions discover candidate rules,
closed questions verify them. All-closed (without seeds) can never
discover; all-open never verifies; an intermediate mix wins, and the
adaptive policy tracks the good region without hand-tuning.
"""

from dataclasses import replace

from repro.eval import e2_open_ratio, format_experiment, run_experiment, run_variants

from conftest import run_once


def test_e2_open_ratio(benchmark, scale):
    base, variants = e2_open_ratio(scale)

    def run():
        return run_variants(base, variants)

    results = run_once(benchmark, run)
    print()
    print(format_experiment(f"E2: open/closed mix ({scale})", results))

    final = {label: r.curve.final() for label, r in results.items()}
    # Pure open discovers but never verifies: F1 must be (near) zero.
    assert final["open_100%"].f1 <= 0.05
    # A moderate mix must beat drowning in discovery.
    best_moderate = max(final["open_05%"].f1, final["open_10%"].f1)
    assert best_moderate > final["open_50%"].f1
    # The adaptive policy should be competitive with the best fixed mix.
    assert final["adaptive"].f1 >= best_moderate - 0.15


def test_e2_pure_closed_without_seeds_finds_nothing(scale, benchmark):
    base, _ = e2_open_ratio(scale)
    config = replace(
        base,
        name="closed_strict",
        open_policy=0.0,
        repetitions=1,
    )

    # A strict closed-only policy has no discovery channel at all; the
    # fallback-to-open flag is what the 0% variant above relies on, so
    # here we drive the miner directly.
    def run():
        from repro.crowd import SimulatedCrowd
        from repro.crowd.open_behavior import OpenAnswerPolicy
        from repro.eval.runner import build_world
        from repro.miner import CrowdMiner, CrowdMinerConfig, FixedRatioPolicy

        _, population, truth = build_world(config, seed=1)
        crowd = SimulatedCrowd.from_population(
            population,
            answer_model=config.answer_model(),
            open_policy=OpenAnswerPolicy(),
            seed=2,
        )
        miner = CrowdMiner(
            crowd,
            CrowdMinerConfig(
                thresholds=config.thresholds(),
                budget=config.budget,
                open_policy=FixedRatioPolicy(0.0, fallback_to_open=False),
                seed=3,
            ),
        )
        result = miner.run()
        return result, truth

    result, truth = run_once(benchmark, run)
    print(
        f"\nE2 addendum: strict closed-only, no seeds → "
        f"{result.questions_asked} questions asked, "
        f"{len(result.significant)} rules reported (truth: {len(truth)})"
    )
    assert len(result.significant) == 0
